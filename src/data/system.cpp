#include "data/system.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace eus {

SystemModel::SystemModel(std::vector<TaskType> task_types,
                         std::vector<MachineType> machine_types,
                         std::vector<Machine> machines, Matrix etc, Matrix epc)
    : task_types_(std::move(task_types)),
      machine_types_(std::move(machine_types)),
      machines_(std::move(machines)),
      etc_(std::move(etc)),
      epc_(std::move(epc)) {
  validate();
  build_eligibility();
}

void SystemModel::validate() const {
  if (task_types_.empty()) throw std::invalid_argument("no task types");
  if (machine_types_.empty()) throw std::invalid_argument("no machine types");
  if (machines_.empty()) throw std::invalid_argument("no machines");
  if (etc_.rows() != task_types_.size() ||
      etc_.cols() != machine_types_.size()) {
    throw std::invalid_argument("ETC shape mismatch");
  }
  if (epc_.rows() != etc_.rows() || epc_.cols() != etc_.cols()) {
    throw std::invalid_argument("EPC shape mismatch");
  }

  for (const auto& m : machines_) {
    if (m.type < 0 ||
        static_cast<std::size_t>(m.type) >= machine_types_.size()) {
      throw std::invalid_argument("machine references unknown type");
    }
  }

  for (std::size_t t = 0; t < task_types_.size(); ++t) {
    const auto& tt = task_types_[t];
    if (tt.category == Category::kSpecial) {
      if (tt.special_machine_type < 0 ||
          static_cast<std::size_t>(tt.special_machine_type) >=
              machine_types_.size()) {
        throw std::invalid_argument("special task without special machine");
      }
      if (machine_types_[static_cast<std::size_t>(tt.special_machine_type)]
              .category != Category::kSpecial) {
        throw std::invalid_argument(
            "special task points at a general machine type");
      }
    }
    bool any = false;
    for (std::size_t m = 0; m < machine_types_.size(); ++m) {
      const double tv = etc_(t, m);
      const double pv = epc_(t, m);
      if (tv == kIneligible) {
        // Eligibility rules of §III-C: only special machines may reject
        // tasks; a general machine must run everything.
        if (machine_types_[m].category == Category::kGeneral) {
          throw std::invalid_argument("general machine type marked "
                                      "ineligible for task type " +
                                      task_types_[t].name);
        }
        continue;
      }
      if (!(std::isfinite(tv) && tv > 0.0)) {
        throw std::invalid_argument("non-positive ETC entry");
      }
      if (!(std::isfinite(pv) && pv > 0.0)) {
        throw std::invalid_argument("non-positive EPC entry");
      }
      if (machine_types_[m].category == Category::kSpecial &&
          (task_types_[t].category != Category::kSpecial ||
           task_types_[t].special_machine_type != static_cast<int>(m))) {
        throw std::invalid_argument(
            "special machine eligible for a task type it does not own");
      }
      any = true;
    }
    if (!any) {
      throw std::invalid_argument("task type " + task_types_[t].name +
                                  " cannot run anywhere");
    }
  }
}

void SystemModel::build_eligibility() {
  eligible_machines_.assign(task_types_.size(), {});
  for (std::size_t t = 0; t < task_types_.size(); ++t) {
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      if (eligible(t, m)) {
        eligible_machines_[t].push_back(static_cast<int>(m));
      }
    }
    if (eligible_machines_[t].empty()) {
      // Possible when the catalog has types but no instances of them.
      throw std::invalid_argument("task type " + task_types_[t].name +
                                  " has no eligible machine instance");
    }
  }
}

std::size_t SystemModel::count_of_type(std::size_t machine_type) const {
  std::size_t n = 0;
  for (const auto& m : machines_) {
    if (static_cast<std::size_t>(m.type) == machine_type) ++n;
  }
  return n;
}

}  // namespace eus
