#pragma once

// The paper's "real historical data": a 5x9 ETC/EPC pair measured by
// openbenchmarking.org across nine desktop CPUs (Table I) and five programs
// (Table II).
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the cited openbenchmarking result
// page (ref [20], accessed 2012) is not retrievable offline, so the numbers
// here are a plausible reconstruction — execution times respect the CPUs'
// documented relative single-/multi-thread performance, and powers respect
// their TDP classes plus a shared discrete GPU under the two graphics
// workloads.  Only the heterogeneity *structure* of the matrix matters to
// the framework; EXPERIMENTS.md quantifies the reconstruction's mvsk
// signature.

#include "data/system.hpp"

namespace eus {

/// The nine benchmark machine names of Table I, in paper order.
[[nodiscard]] const std::vector<MachineType>& historical_machine_types();

/// The five benchmark program names of Table II, in paper order.
[[nodiscard]] const std::vector<TaskType>& historical_task_types();

/// 5x9 estimated execution times in seconds.
[[nodiscard]] const Matrix& historical_etc();

/// 5x9 average powers in watts.
[[nodiscard]] const Matrix& historical_epc();

/// Dataset 1's machine suite: exactly one machine instance per historical
/// machine type (§V-A).
[[nodiscard]] SystemModel historical_system();

}  // namespace eus
