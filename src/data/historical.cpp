#include "data/historical.hpp"

namespace eus {

// Column order matches Table I.  "AMD FX-8159" is kept verbatim from the
// paper (almost certainly the FX-8150; we preserve the label).
const std::vector<MachineType>& historical_machine_types() {
  static const std::vector<MachineType> kTypes = {
      {"AMD A8-3870K", Category::kGeneral},
      {"AMD FX-8159", Category::kGeneral},
      {"Intel Core i3 2120", Category::kGeneral},
      {"Intel Core i5 2400S", Category::kGeneral},
      {"Intel Core i5 2500K", Category::kGeneral},
      {"Intel Core i7 3960X", Category::kGeneral},
      {"Intel Core i7 3960X @ 4.2 GHz", Category::kGeneral},
      {"Intel Core i7 3770K", Category::kGeneral},
      {"Intel Core i7 3770K @ 4.3 GHz", Category::kGeneral},
  };
  return kTypes;
}

// Row order matches Table II.
const std::vector<TaskType>& historical_task_types() {
  static const std::vector<TaskType> kTypes = {
      {"C-Ray", Category::kGeneral, -1},
      {"7-Zip Compression", Category::kGeneral, -1},
      {"Warsow", Category::kGeneral, -1},
      {"Unigine Heaven", Category::kGeneral, -1},
      {"Timed Linux Kernel Compilation", Category::kGeneral, -1},
  };
  return kTypes;
}

// Seconds.  Rows: C-Ray, 7-Zip, Warsow, Unigine Heaven, kernel compile.
// Columns: Table I order.  C-Ray/7-Zip/kernel scale with multi-thread
// throughput (3960X fastest, A8/i3 slowest); Warsow is lightly threaded;
// Unigine Heaven is GPU-bound (all machines share one GPU) so its spread is
// small.
const Matrix& historical_etc() {
  static const Matrix kEtc = Matrix::from_rows({
      //  A8     FX    i3    2400S 2500K 3960X @4.2  3770K @4.3
      // The quad-core A8 beats the dual-core i3 on well-threaded work
      // (C-Ray, 7-Zip, kernel) but loses badly on the lightly threaded
      // game loads — the matrix is *inconsistent* in the Ali et al. sense,
      // as heterogeneous suites are.
      {80.0, 52.0, 88.0, 70.0, 60.0, 28.0, 25.0, 40.0, 36.0},      // C-Ray
      {125.0, 78.0, 140.0, 105.0, 92.0, 45.0, 41.0, 62.0, 56.0},   // 7-Zip
      {210.0, 150.0, 130.0, 115.0, 100.0, 85.0, 78.0, 88.0, 80.0},  // Warsow
      {180.0, 165.0, 162.0, 158.0, 152.0, 145.0, 142.0, 148.0,
       144.0},                                                      // Heaven
      {270.0, 180.0, 300.0, 230.0, 200.0, 95.0, 87.0, 135.0,
       122.0},  // kernel
  });
  return kEtc;
}

// Watts (whole-system average while the task runs).  CPU-heavy rows track
// TDP class (FX-8150 and the 3960X pull the most, the overclocked parts
// more still); the two graphics rows add the shared discrete GPU's draw.
const Matrix& historical_epc() {
  static const Matrix kEpc = Matrix::from_rows({
      //  A8     FX     i3     2400S  2500K  3960X  @4.2   3770K  @4.3
      {128.0, 182.0, 96.0, 102.0, 124.0, 196.0, 224.0, 118.0, 142.0},  // C-Ray
      {122.0, 174.0, 92.0, 98.0, 118.0, 188.0, 214.0, 112.0, 134.0},  // 7-Zip
      {178.0, 222.0, 152.0, 156.0, 172.0, 238.0, 262.0, 168.0,
       188.0},  // Warsow
      {186.0, 228.0, 160.0, 162.0, 178.0, 244.0, 266.0, 174.0,
       192.0},  // Heaven
      {124.0, 178.0, 94.0, 100.0, 120.0, 192.0, 218.0, 114.0,
       138.0},  // kernel
  });
  return kEpc;
}

SystemModel historical_system() {
  const auto& types = historical_machine_types();
  std::vector<Machine> machines;
  machines.reserve(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    machines.push_back({static_cast<int>(i), types[i].name});
  }
  return SystemModel(historical_task_types(), types, std::move(machines),
                     historical_etc(), historical_epc());
}

}  // namespace eus
