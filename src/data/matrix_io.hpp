#pragma once

// CSV round-trip for ETC/EPC matrices so users can feed their own measured
// data into the framework.  Layout: first row is a header ("task" + machine
// type names), following rows are "task type name, v1, v2, ...".  The token
// "inf" (case-insensitive) encodes kIneligible.

#include <string>
#include <vector>

#include "data/matrix.hpp"
#include "data/types.hpp"

namespace eus {

struct NamedMatrix {
  std::vector<std::string> row_names;  ///< task type names
  std::vector<std::string> col_names;  ///< machine type names
  Matrix values;
};

/// Serializes to the CSV layout above.
[[nodiscard]] std::string matrix_to_csv(const NamedMatrix& m);

/// Parses the CSV layout above; throws std::runtime_error on malformed
/// input (ragged rows, non-numeric cells, missing header).
[[nodiscard]] NamedMatrix matrix_from_csv(const std::string& csv);

}  // namespace eus
