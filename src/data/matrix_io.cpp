#include "data/matrix_io.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace eus {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

double parse_cell(const std::string& cell) {
  const std::string low = to_lower(cell);
  if (low == "inf" || low == "+inf" || low == "infinity") return kIneligible;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &pos);
  } catch (...) {
    throw std::runtime_error("non-numeric matrix cell: '" + cell + "'");
  }
  if (pos != cell.size()) {
    throw std::runtime_error("trailing junk in matrix cell: '" + cell + "'");
  }
  return v;
}

}  // namespace

std::string matrix_to_csv(const NamedMatrix& m) {
  std::ostringstream os;
  CsvWriter writer(os);

  std::vector<std::string> header = {"task"};
  header.insert(header.end(), m.col_names.begin(), m.col_names.end());
  writer.write_row(header);

  for (std::size_t r = 0; r < m.values.rows(); ++r) {
    std::vector<std::string> row = {m.row_names.at(r)};
    for (std::size_t c = 0; c < m.values.cols(); ++c) {
      const double v = m.values(r, c);
      row.push_back(v == kIneligible ? "inf" : format_double(v, 6));
    }
    writer.write_row(row);
  }
  return os.str();
}

NamedMatrix matrix_from_csv(const std::string& csv) {
  const auto rows = parse_csv(csv);
  if (rows.size() < 2) throw std::runtime_error("matrix CSV needs header + rows");
  const auto& header = rows.front();
  if (header.size() < 2) throw std::runtime_error("matrix CSV needs >= 1 column");

  NamedMatrix out;
  out.col_names.assign(header.begin() + 1, header.end());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != header.size()) {
      throw std::runtime_error("ragged matrix CSV row");
    }
    out.row_names.push_back(row.front());
    std::vector<double> values;
    values.reserve(row.size() - 1);
    for (std::size_t c = 1; c < row.size(); ++c) {
      values.push_back(parse_cell(row[c]));
    }
    out.values.append_row(values);
  }
  return out;
}

}  // namespace eus
