#include "fleet/ring.hpp"

#include <algorithm>
#include <cmath>

namespace eus::fleet {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

// FNV-1a avalanches poorly in the high bits for short, similar keys (the
// vnode labels differ only in a trailing counter), which skews arc lengths
// on the ring.  A 64-bit finalizer (Murmur3 fmix64) on top restores the
// uniformity the spread and remap guarantees depend on.
std::uint64_t ring_position(std::string_view bytes) noexcept {
  std::uint64_t h = fnv1a64(bytes);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

void HashRing::add(const std::string& name, double weight) {
  if (weight < 0.25) weight = 0.25;
  const auto vnodes = static_cast<std::size_t>(
      std::lround(static_cast<double>(replicas_) * weight));
  const auto backend = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  ++backends_;
  points_.reserve(points_.size() + vnodes);
  for (std::size_t r = 0; r < vnodes; ++r) {
    const std::string point = name + '#' + std::to_string(r);
    points_.push_back({ring_position(point), backend});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash < b.hash ||
                     (a.hash == b.hash && a.backend < b.backend);
            });
}

std::string HashRing::owner(std::string_view key) const {
  if (points_.empty()) return {};
  const std::uint64_t h = ring_position(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t hash) {
                               return p.hash < hash;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return names_[it->backend];
}

std::vector<std::string> HashRing::preference(std::string_view key) const {
  std::vector<std::string> order;
  if (points_.empty()) return order;
  order.reserve(backends_);
  const std::uint64_t h = ring_position(key);
  auto start = std::lower_bound(points_.begin(), points_.end(), h,
                                [](const Point& p, std::uint64_t hash) {
                                  return p.hash < hash;
                                });
  if (start == points_.end()) start = points_.begin();
  std::vector<bool> seen(names_.size(), false);
  auto it = start;
  do {
    if (!seen[it->backend]) {
      seen[it->backend] = true;
      order.push_back(names_[it->backend]);
      if (order.size() == backends_) break;
    }
    ++it;
    if (it == points_.end()) it = points_.begin();
  } while (it != start);
  return order;
}

}  // namespace eus::fleet
