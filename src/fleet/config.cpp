#include "fleet/config.hpp"

#include <cmath>
#include <set>

namespace eus::fleet {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const std::string& reason) {
  throw FleetConfigError(reason);
}

bool valid_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

constexpr std::string_view kModePrefix = "mode:";
constexpr std::string_view kScenarioPrefix = "scenario:";

bool known_mode(std::string_view mode) {
  return mode == "heuristic" || mode == "nsga2" || mode == "pareto-query";
}

void validate_capability(const std::string& tag, const std::string& backend) {
  if (tag == "*") return;
  if (tag.rfind(kModePrefix, 0) == 0) {
    const std::string_view mode =
        std::string_view(tag).substr(kModePrefix.size());
    if (!known_mode(mode)) {
      fail("backend '" + backend + "': unknown mode capability '" + tag +
           "' (want mode:heuristic|mode:nsga2|mode:pareto-query)");
    }
    return;
  }
  if (tag.rfind(kScenarioPrefix, 0) == 0) {
    if (tag.size() == kScenarioPrefix.size()) {
      fail("backend '" + backend + "': empty scenario capability");
    }
    return;
  }
  fail("backend '" + backend + "': unknown capability syntax '" + tag +
       "' (want \"*\", \"mode:<m>\" or \"scenario:<name>\")");
}

double positive_field(const JsonValue& obj, std::string_view key,
                      double fallback, const std::string& backend) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || !(v->number > 0.0) || !std::isfinite(v->number)) {
    fail("backend '" + backend + "': " + std::string(key) +
         " must be a positive finite number");
  }
  return v->number;
}

BackendConfig parse_backend(const JsonValue& entry) {
  if (!entry.is_object()) fail("backends entries must be objects");
  BackendConfig backend;
  backend.name = entry.string_or("name", "");
  if (!valid_name(backend.name)) {
    fail("backend name '" + backend.name +
         "' is invalid (want 1-64 chars of [A-Za-z0-9_.-])");
  }
  backend.host = entry.string_or("host", backend.host);
  if (backend.host != "127.0.0.1" && backend.host != "localhost") {
    fail("backend '" + backend.name + "': host '" + backend.host +
         "' is not loopback (the fleet is single-host for now; want "
         "127.0.0.1 or localhost)");
  }
  const JsonValue* port = entry.get("port");
  if (port == nullptr || !port->is_number() ||
      port->number != std::floor(port->number) || port->number < 1.0 ||
      port->number > 65535.0) {
    fail("backend '" + backend.name + "': port must be an integer 1..65535");
  }
  backend.port = static_cast<std::uint16_t>(port->number);
  if (const JsonValue* caps = entry.get("capabilities"); caps != nullptr) {
    if (!caps->is_array()) {
      fail("backend '" + backend.name + "': capabilities must be an array");
    }
    for (const JsonValue& tag : caps->array) {
      if (!tag.is_string()) {
        fail("backend '" + backend.name +
             "': capabilities entries must be strings");
      }
      validate_capability(tag.string, backend.name);
      backend.capabilities.push_back(tag.string);
    }
  }
  backend.speed_factor =
      positive_field(entry, "speed_factor", backend.speed_factor,
                     backend.name);
  backend.watts = positive_field(entry, "watts", backend.watts, backend.name);
  if (const JsonValue* m = entry.get("max_in_flight"); m != nullptr) {
    if (!m->is_number() || m->number != std::floor(m->number) ||
        m->number < 1.0) {
      fail("backend '" + backend.name +
           "': max_in_flight must be an integer >= 1");
    }
    backend.max_in_flight = static_cast<std::size_t>(m->number);
  }
  if (const JsonValue* e = entry.get("enabled"); e != nullptr) {
    if (e->kind != JsonValue::Kind::kBool) {
      fail("backend '" + backend.name + "': enabled must be a boolean");
    }
    backend.enabled = e->boolean;
  }
  return backend;
}

}  // namespace

FleetConfig parse_fleet_config(const util::JsonValue& doc) {
  if (!doc.is_object()) fail("fleet config must be a JSON object");
  const JsonValue* backends = doc.get("backends");
  if (backends == nullptr || !backends->is_array()) {
    fail("fleet config needs a \"backends\" array");
  }
  FleetConfig config;
  std::set<std::string> names;
  std::set<std::pair<std::string, std::uint16_t>> endpoints;
  for (const JsonValue& entry : backends->array) {
    BackendConfig backend = parse_backend(entry);
    if (!names.insert(backend.name).second) {
      fail("duplicate backend name '" + backend.name + "'");
    }
    if (!endpoints.insert({backend.host, backend.port}).second) {
      fail("backend '" + backend.name + "': duplicate endpoint " +
           backend.host + ":" + std::to_string(backend.port));
    }
    config.backends.push_back(std::move(backend));
  }
  if (config.backends.empty()) {
    fail("fleet config needs at least one backend");
  }
  return config;
}

FleetConfig parse_fleet_config_text(std::string_view json) {
  try {
    return parse_fleet_config(util::parse_json(json));
  } catch (const util::JsonParseError& e) {
    fail(std::string("malformed fleet JSON: ") + e.what());
  }
}

FleetConfig load_fleet_config(const std::string& path) {
  return parse_fleet_config(util::parse_json_file(path));
}

bool capabilities_allow(const std::vector<std::string>& capabilities,
                        std::string_view mode, std::string_view scenario) {
  bool mode_listed = false;
  bool mode_allowed = false;
  bool scenario_listed = false;
  bool scenario_allowed = false;
  for (const std::string& tag : capabilities) {
    if (tag == "*") return true;
    if (tag.rfind(kModePrefix, 0) == 0) {
      mode_listed = true;
      if (std::string_view(tag).substr(kModePrefix.size()) == mode) {
        mode_allowed = true;
      }
    } else if (tag.rfind(kScenarioPrefix, 0) == 0) {
      scenario_listed = true;
      if (std::string_view(tag).substr(kScenarioPrefix.size()) == scenario) {
        scenario_allowed = true;
      }
    }
  }
  return (!mode_listed || mode_allowed) &&
         (!scenario_listed || scenario_allowed);
}

}  // namespace eus::fleet
