#pragma once

// Request-routing policies: the paper's scheduling heuristics re-applied
// at the serving layer, with backends playing the machines and requests
// the tasks.
//
//  - round-robin   the baseline: rotate over candidates, ignore state.
//  - min-min       Min-Min completion time (the repo's min-min seed
//                  heuristic): estimated completion of the new request on
//                  backend b is (in_flight_b + 1) * cost / speed_factor_b;
//                  route to the backend finishing it earliest.
//  - max-upe       Max-Utility-per-Energy (the paper's U/E trade-off):
//                  the utility rate a request earns on b is
//                  speed_factor_b / (in_flight_b + 1), its power price is
//                  watts_b; route to the backend with the best ratio.
//
// Policies are pure functions over a candidate snapshot, so they are unit-
// testable without sockets; the router owns candidate construction
// (eligibility, health, in-flight caps) and cache affinity.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace eus::fleet {

enum class RoutePolicy { kRoundRobin, kMinMin, kMaxUpe };

[[nodiscard]] const char* to_string(RoutePolicy p) noexcept;
[[nodiscard]] std::optional<RoutePolicy> policy_from_slug(
    std::string_view slug) noexcept;

/// One routable backend's scheduling-relevant state, snapshotted at
/// selection time.
struct Candidate {
  std::string name;
  double speed_factor = 1.0;
  double watts = 1.0;
  std::size_t in_flight = 0;
};

/// Relative compute cost of a request, in heuristic-request units: a
/// greedy heuristic or cached pareto-query is ~1, an NSGA-II run scales
/// with its population x generations budget.  Only ratios matter — the
/// min-min completion estimate divides this by the backend speed factor.
[[nodiscard]] double request_cost_units(const serve::ServeRequest& request);

/// Picks the winning candidate index (candidates must be non-empty).
/// `cost_units` feeds min-min; `ticket` is the round-robin rotation
/// counter.  Deterministic: exact ties resolve to the lexicographically
/// smallest backend name so tests and replicas agree.
[[nodiscard]] std::size_t choose_backend(
    RoutePolicy policy, const std::vector<Candidate>& candidates,
    double cost_units, std::uint64_t ticket);

}  // namespace eus::fleet
