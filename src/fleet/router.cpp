#include "fleet/router.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <stdexcept>
#include <utility>

#include "serve/handlers.hpp"
#include "telemetry/json.hpp"
#include "util/json_value.hpp"

namespace eus::fleet {

namespace {

using serve::error_payload;
using serve::kCodeBadRequest;
using serve::kCodeInternal;
using serve::kCodeOk;
using serve::kCodeOverloaded;

/// The mode slug capabilities match against ("heuristic" | "nsga2" |
/// "pareto-query").
const char* mode_slug(const serve::ServeRequest& request) noexcept {
  return to_string(request.mode);
}

bool same_config(const BackendConfig& a, const BackendConfig& b) {
  return a.name == b.name && a.host == b.host && a.port == b.port &&
         a.capabilities == b.capabilities &&
         a.speed_factor == b.speed_factor && a.watts == b.watts &&
         a.max_in_flight == b.max_in_flight;
}

/// The status code a forwarded response carries (the router relays the
/// payload verbatim but still classifies it for metrics and the log).
int response_code(const std::string& payload) noexcept {
  try {
    const util::JsonValue doc = util::parse_json(payload);
    return static_cast<int>(doc.number_or("code", kCodeOk));
  } catch (const std::exception&) {
    return kCodeInternal;
  }
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Router::Router(RouterConfig config) : config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  metric_requests_ = &metrics_->counter("fleet.requests");
  metric_responses_ok_ = &metrics_->counter("fleet.responses_ok");
  metric_errors_ = &metrics_->counter("fleet.errors");
  metric_retries_ = &metrics_->counter("fleet.retries");
  metric_no_backend_ = &metrics_->counter("fleet.no_backend");
  metric_upstream_failed_ = &metrics_->counter("fleet.upstream_failed");
  metric_backend_down_ = &metrics_->counter("fleet.backend.down");
  metric_backend_up_ = &metrics_->counter("fleet.backend.up");
  metric_probes_ = &metrics_->counter("fleet.probes");
  metric_admin_actions_ = &metrics_->counter("fleet.admin.actions");
  metric_fleet_reloads_ = &metrics_->counter("fleet.reloads");
  metric_backends_up_ = &metrics_->gauge("fleet.backends_up");
  metric_latency_ = &metrics_->histogram("fleet.latency");

  fleet_ = build_fleet(config_.fleet, nullptr);
}

Router::~Router() { stop(); }

std::shared_ptr<const Router::Fleet> Router::fleet_snapshot() const {
  const std::lock_guard lock(fleet_mutex_);
  return fleet_;
}

std::shared_ptr<Router::Fleet> Router::build_fleet(
    FleetConfig config, const Fleet* previous) const {
  auto fleet = std::make_shared<Fleet>();
  fleet->backends.reserve(config.backends.size());
  std::size_t up = 0;
  for (BackendConfig& bc : config.backends) {
    std::shared_ptr<Backend> backend;
    if (previous != nullptr) {
      // A backend surviving a reload unchanged keeps its whole runtime
      // state, including in-flight counts.  A changed descriptor gets a
      // fresh object (its scheduling-relevant fields are read without
      // locks, so they must stay immutable per Backend) but inherits the
      // health verdict so a reload never resets probe backoff.
      for (const auto& old : previous->backends) {
        if (old->config.name != bc.name) continue;
        if (same_config(old->config, bc)) {
          backend = old;
        } else {
          backend = std::make_shared<Backend>();
          backend->config = bc;
          backend->up.store(old->up.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
          backend->consecutive_failures.store(
              old->consecutive_failures.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          backend->next_probe_ns.store(
              old->next_probe_ns.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
        break;
      }
    }
    if (backend == nullptr) {
      backend = std::make_shared<Backend>();
      backend->config = bc;
    }
    // The config's enabled flag is declarative: a reload overrides any
    // earlier enable-backend/disable-backend toggle.
    backend->enabled.store(bc.enabled, std::memory_order_relaxed);
    backend->metric_requests =
        &metrics_->counter("fleet.backend." + bc.name + ".requests");
    backend->metric_failures =
        &metrics_->counter("fleet.backend." + bc.name + ".failures");
    backend->metric_in_flight =
        &metrics_->gauge("fleet.backend." + bc.name + ".in_flight");
    if (backend->up.load(std::memory_order_relaxed)) ++up;
    // Disabled backends stay on the ring so enable-backend needs no
    // rebuild — plan() filters them out.
    fleet->ring.add(bc.name, bc.speed_factor);
    fleet->backends.push_back(std::move(backend));
  }
  metric_backends_up_->set(static_cast<double>(up));
  return fleet;
}

void Router::start() {
  if (started_.exchange(true)) return;
  uptime_.reset();
  acceptor_.start(config_.port, [this](int fd) {
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    connections_.reap();
    connections_.adopt(fd, [this](serve::ConnectionSet::Connection* c) {
      connection_loop(c);
    });
  });
  if (config_.health_period_s > 0.0) {
    prober_ = std::thread([this] { prober_loop(); });
  }
  if (config_.log != nullptr) {
    JsonObject o;
    o.field("type", "config");
    o.field("service", "eus_router");
    o.field("port", static_cast<std::uint64_t>(port()));
    o.field("policy", to_string(config_.policy));
    o.field("health_period_s", config_.health_period_s);
    o.field("backends",
            static_cast<std::uint64_t>(fleet_snapshot()->backends.size()));
    config_.log->write(o.str());
  }
}

void Router::request_stop() noexcept {
  draining_.store(true, std::memory_order_relaxed);
  acceptor_.interrupt();
}

void Router::stop() {
  if (!started_.load()) return;
  draining_.store(true, std::memory_order_relaxed);
  acceptor_.halt();
  {
    const std::lock_guard lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  // In-flight proxied calls finish against backends that answer every
  // accepted request, so halting the readers drains rather than aborts.
  connections_.halt();
}

void Router::connection_loop(serve::ConnectionSet::Connection* connection) {
  serve::FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<char> buffer(64 * 1024);
  bool keep = true;
  while (keep) {
    std::optional<std::string> payload;
    while (keep && (payload = decoder.next()).has_value()) {
      keep = process_payload(connection, *payload);
    }
    if (!keep) break;
    const ssize_t n =
        ::recv(connection->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;  // peer closed (or drain shut the read side)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      decoder.feed(buffer.data(), static_cast<std::size_t>(n));
    } catch (const serve::ProtocolError& e) {
      // A hostile length prefix poisons the stream: answer once, close.
      metric_errors_->add();
      send_payload(connection,
                   error_payload("", kCodeBadRequest, "error", e.what()));
      break;
    }
  }
  connections_.close_fd(connection);
  connection->done.store(true, std::memory_order_release);
}

bool Router::process_payload(serve::ConnectionSet::Connection* connection,
                             const std::string& payload) {
  serve::ServeRequest request;
  try {
    request = serve::parse_request_text(payload);
  } catch (const serve::ProtocolError& e) {
    metric_errors_->add();
    send_payload(connection,
                 error_payload("", kCodeBadRequest, "error", e.what()));
    return true;
  }
  metric_requests_->add();

  if (request.kind == serve::RequestKind::kHealthz) {
    send_payload(connection, healthz_payload(request.id));
    return true;
  }
  if (request.kind == serve::RequestKind::kMetricsz) {
    send_payload(connection, metricsz_payload(request.id));
    return true;
  }
  if (request.kind == serve::RequestKind::kAdminz) {
    send_payload(connection, adminz_payload(request));
    return true;
  }

  if (draining_.load(std::memory_order_relaxed)) {
    metric_errors_->add();
    send_payload(connection,
                 error_payload(request.id, kCodeOverloaded, "overloaded",
                               "router is draining; no new work accepted"));
    return true;
  }
  send_payload(connection, route_allocate(std::move(request), payload));
  return true;
}

void Router::send_payload(serve::ConnectionSet::Connection* connection,
                          const std::string& payload) {
  const std::string frame = serve::encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(connection->fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing sensible left to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Router::route_allocate(serve::ServeRequest request,
                                   const std::string& payload) {
  const Stopwatch total;

  // Resolve catalog aliases before anything else: the fingerprint must key
  // on what actually runs (cache affinity survives reloads), and backends
  // carry no catalog, so an aliased request is re-rendered with its
  // concrete scenario while everything else forwards byte-for-byte.  A
  // delta request's scenario lives in delta.base.
  const bool is_delta = request.kind == serve::RequestKind::kDelta;
  const bool aliased = !ScenarioCatalog::is_builtin_name(
      is_delta ? request.delta.base.name : request.scenario.name);
  std::string forward_payload;
  try {
    std::shared_ptr<const ScenarioCatalog> catalog;
    if (config_.catalog != nullptr) catalog = config_.catalog->snapshot();
    if (is_delta) {
      request.delta.base =
          resolve_scenario(request.delta.base, catalog.get());
      forward_payload = aliased ? render_delta_request(request) : payload;
    } else {
      request.scenario = resolve_scenario(request.scenario, catalog.get());
      forward_payload = aliased ? render_allocate_request(request) : payload;
    }
  } catch (const serve::ProtocolError& e) {
    metric_errors_->add();
    log_request(request, kCodeBadRequest, total.milliseconds(), "", false);
    return error_payload(request.id, kCodeBadRequest, "error", e.what());
  }
  // Tenant-scoped requests route by tenant id, not fingerprint: every
  // scenario a tenant touches — and every delta against it — lands on the
  // backend holding that tenant's warm-start archive.
  const std::string affinity = request.tenant.empty()
                                   ? serve::request_fingerprint(request)
                                   : request.tenant;

  const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
  const std::vector<std::shared_ptr<Backend>> candidates =
      plan(*fleet, request, affinity);
  if (candidates.empty()) {
    metric_no_backend_->add();
    metric_errors_->add();
    log_request(request, kCodeOverloaded, total.milliseconds(), "", false);
    return error_payload(request.id, kCodeOverloaded, "overloaded",
                         "no routable backend for this request (all down, "
                         "disabled, or not capable)");
  }

  // First eligible backend, with exactly one failover retry on a
  // different one — a cheap insurance policy, not a retry storm.
  bool retried = false;
  const std::size_t attempts = std::min<std::size_t>(2, candidates.size());
  for (std::size_t i = 0; i < attempts; ++i) {
    Backend& backend = *candidates[i];
    if (i > 0) {
      retried = true;
      metric_retries_->add();
    }
    std::optional<std::string> response = forward(backend, forward_payload);
    if (!response.has_value()) continue;
    const int code = response_code(*response);
    if (code == kCodeOk || code == serve::kCodePartial) {
      metric_responses_ok_->add();
    } else {
      metric_errors_->add();
    }
    metric_latency_->observe_seconds(total.seconds());
    log_request(request, code, total.milliseconds(), backend.config.name,
                retried);
    return *response;
  }
  metric_upstream_failed_->add();
  metric_errors_->add();
  log_request(request, kCodeBadGateway, total.milliseconds(),
              candidates[attempts - 1]->config.name, retried);
  return error_payload(request.id, kCodeBadGateway, "bad-gateway",
                       "every routable backend failed while forwarding "
                       "this request");
}

std::vector<std::shared_ptr<Router::Backend>> Router::plan(
    const Fleet& fleet, const serve::ServeRequest& request,
    const std::string& affinity) {
  const char* mode = mode_slug(request);
  const std::string& scenario_name =
      request.kind == serve::RequestKind::kDelta ? request.delta.base.name
                                                 : request.scenario.name;
  std::vector<std::shared_ptr<Backend>> capable;
  capable.reserve(fleet.backends.size());
  for (const auto& backend : fleet.backends) {
    if (!backend->enabled.load(std::memory_order_relaxed)) continue;
    if (!backend->up.load(std::memory_order_relaxed)) continue;
    if (!capabilities_allow(backend->config.capabilities, mode,
                            scenario_name)) {
      continue;
    }
    capable.push_back(backend);
  }
  if (capable.size() <= 1) return capable;

  // Backends under their in-flight cap route first; saturated ones stay
  // as failover targets only (their own bounded queue is the real
  // backpressure, the cap just steers load away from them).
  const auto saturated = [](const Backend& b) {
    return b.in_flight.load(std::memory_order_relaxed) >=
           b.config.max_in_flight;
  };

  std::vector<std::shared_ptr<Backend>> order;
  order.reserve(capable.size());
  const bool cacheable = request.mode != serve::ModeKind::kHeuristic;
  if (cacheable) {
    // Cache/archive affinity: walk the consistent-hash ring from the
    // affinity key's owner so repeated identical requests (and a tenant's
    // whole request stream) land on the backend already holding the cached
    // front or the tenant's archive.
    for (const std::string& name : fleet.ring.preference(affinity)) {
      for (const auto& backend : capable) {
        if (backend->config.name == name) {
          order.push_back(backend);
          break;
        }
      }
    }
  } else {
    std::vector<Candidate> snapshot;
    snapshot.reserve(capable.size());
    std::vector<std::shared_ptr<Backend>> pool;
    for (const auto& backend : capable) {
      if (saturated(*backend)) continue;
      snapshot.push_back({backend->config.name, backend->config.speed_factor,
                          backend->config.watts,
                          backend->in_flight.load(std::memory_order_relaxed)});
      pool.push_back(backend);
    }
    if (!pool.empty()) {
      const std::size_t winner = choose_backend(
          config_.policy, snapshot, request_cost_units(request),
          rr_ticket_.fetch_add(1, std::memory_order_relaxed));
      order.push_back(pool[winner]);
    }
    for (const auto& backend : capable) {
      if (order.empty() || backend != order.front()) {
        order.push_back(backend);
      }
    }
  }
  // Stable-partition the saturated backends to the back (preserving the
  // affinity/policy order within each class).
  std::stable_partition(
      order.begin(), order.end(),
      [&](const std::shared_ptr<Backend>& b) { return !saturated(*b); });
  return order;
}

std::optional<std::string> Router::forward(Backend& backend,
                                           const std::string& payload) {
  backend.metric_requests->add();
  backend.metric_in_flight->set(static_cast<double>(
      backend.in_flight.fetch_add(1, std::memory_order_relaxed) + 1));

  serve::ClientConnection connection;
  {
    const std::lock_guard lock(backend.pool_mutex);
    if (!backend.pool.empty()) {
      connection = std::move(backend.pool.back());
      backend.pool.pop_back();
    }
  }
  std::optional<std::string> response;
  try {
    if (!connection.connected()) {
      connection.connect(backend.config.port);
      if (config_.backend_timeout_ms > 0.0) {
        connection.set_timeout_ms(
            static_cast<long>(config_.backend_timeout_ms));
      }
    }
    response = connection.call(payload);
  } catch (const std::exception&) {
    response.reset();
  }

  backend.metric_in_flight->set(static_cast<double>(
      backend.in_flight.fetch_sub(1, std::memory_order_relaxed) - 1));
  if (response.has_value()) {
    const std::lock_guard lock(backend.pool_mutex);
    backend.pool.push_back(std::move(connection));
  } else {
    // Passive health: a transport failure marks the backend down on the
    // spot; the prober brings it back when healthz answers again.
    backend.metric_failures->add();
    mark_down(backend);
  }
  return response;
}

void Router::mark_down(Backend& backend) {
  const std::uint64_t failures =
      backend.consecutive_failures.fetch_add(1, std::memory_order_relaxed) +
      1;
  // Exponential probe backoff: period, 2x, 4x, ... capped at
  // max_backoff_s so a dead backend is not hammered but recovery is
  // noticed within a bounded window.
  const double base =
      config_.health_period_s > 0.0 ? config_.health_period_s : 1.0;
  double delay = base;
  for (std::uint64_t i = 1; i < failures && delay < config_.max_backoff_s;
       ++i) {
    delay *= 2.0;
  }
  if (delay > config_.max_backoff_s) delay = config_.max_backoff_s;
  backend.next_probe_ns.store(
      now_ns() + static_cast<std::int64_t>(delay * 1e9),
      std::memory_order_relaxed);
  if (backend.up.exchange(false, std::memory_order_relaxed)) {
    metric_backend_down_->add();
    // Drop pooled connections — they point at a dead peer.
    std::vector<serve::ClientConnection> stale;
    {
      const std::lock_guard lock(backend.pool_mutex);
      stale.swap(backend.pool);
    }
    const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
    std::size_t up = 0;
    for (const auto& b : fleet->backends) {
      if (b->up.load(std::memory_order_relaxed)) ++up;
    }
    metric_backends_up_->set(static_cast<double>(up));
  }
}

void Router::mark_up(Backend& backend) {
  backend.consecutive_failures.store(0, std::memory_order_relaxed);
  if (!backend.up.exchange(true, std::memory_order_relaxed)) {
    metric_backend_up_->add();
    const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
    std::size_t up = 0;
    for (const auto& b : fleet->backends) {
      if (b->up.load(std::memory_order_relaxed)) ++up;
    }
    metric_backends_up_->set(static_cast<double>(up));
  }
}

bool Router::probe_backend(Backend& backend) {
  metric_probes_->add();
  try {
    serve::ClientConnection probe;
    probe.connect(backend.config.port);
    probe.set_timeout_ms(static_cast<long>(config_.probe_timeout_ms));
    const std::string response =
        probe.call(R"({"type":"healthz","id":"fleet-probe"})");
    return !response.empty();
  } catch (const std::exception&) {
    return false;
  }
}

void Router::probe_now(bool force) {
  const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
  const std::int64_t now = now_ns();
  for (const auto& backend : fleet->backends) {
    if (!force &&
        now < backend->next_probe_ns.load(std::memory_order_relaxed)) {
      continue;
    }
    if (probe_backend(*backend)) {
      mark_up(*backend);
      const double base =
          config_.health_period_s > 0.0 ? config_.health_period_s : 1.0;
      backend->next_probe_ns.store(
          now + static_cast<std::int64_t>(base * 1e9),
          std::memory_order_relaxed);
    } else {
      mark_down(*backend);
    }
  }
}

void Router::prober_loop() {
  const auto period = std::chrono::duration<double>(config_.health_period_s);
  std::unique_lock lock(prober_mutex_);
  while (!prober_stop_) {
    if (prober_cv_.wait_for(lock, period, [this] { return prober_stop_; })) {
      return;
    }
    lock.unlock();
    probe_now();
    lock.lock();
  }
}

bool Router::set_backend_enabled(const std::string& name, bool enabled) {
  const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
  for (const auto& backend : fleet->backends) {
    if (backend->config.name == name) {
      backend->enabled.store(enabled, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Router::reload_fleet(FleetConfig next) {
  const std::lock_guard lock(fleet_mutex_);
  fleet_ = build_fleet(std::move(next), fleet_.get());
  metric_fleet_reloads_->add();
}

std::vector<BackendInfo> Router::backend_info() const {
  const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
  std::vector<BackendInfo> out;
  out.reserve(fleet->backends.size());
  for (const auto& backend : fleet->backends) {
    BackendInfo info;
    info.name = backend->config.name;
    info.port = backend->config.port;
    info.enabled = backend->enabled.load(std::memory_order_relaxed);
    info.up = backend->up.load(std::memory_order_relaxed);
    info.in_flight = backend->in_flight.load(std::memory_order_relaxed);
    info.max_in_flight = backend->config.max_in_flight;
    info.requests = backend->metric_requests->value();
    info.failures = backend->metric_failures->value();
    info.speed_factor = backend->config.speed_factor;
    info.watts = backend->config.watts;
    info.capabilities = backend->config.capabilities;
    out.push_back(std::move(info));
  }
  return out;
}

void Router::append_backends_json(std::string& out) const {
  out += '[';
  bool first = true;
  for (const BackendInfo& info : backend_info()) {
    if (!first) out += ',';
    first = false;
    JsonObject b;
    b.field("name", info.name);
    b.field("port", static_cast<std::uint64_t>(info.port));
    b.field("enabled", info.enabled);
    b.field("up", info.up);
    b.field("in_flight", static_cast<std::uint64_t>(info.in_flight));
    b.field("max_in_flight",
            static_cast<std::uint64_t>(info.max_in_flight));
    b.field("requests", info.requests);
    b.field("failures", info.failures);
    b.field("speed_factor", info.speed_factor);
    b.field("watts", info.watts);
    std::string caps = "[";
    for (std::size_t i = 0; i < info.capabilities.size(); ++i) {
      if (i > 0) caps += ',';
      caps += '"' + json_escape(info.capabilities[i]) + '"';
    }
    caps += ']';
    b.raw("capabilities", caps);
    out += b.str();
  }
  out += ']';
}

std::string Router::healthz_payload(const std::string& id) const {
  const std::shared_ptr<const Fleet> fleet = fleet_snapshot();
  std::size_t up = 0;
  std::size_t enabled = 0;
  for (const auto& backend : fleet->backends) {
    if (backend->up.load(std::memory_order_relaxed)) ++up;
    if (backend->enabled.load(std::memory_order_relaxed)) ++enabled;
  }
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("service", "eus_router");
  o.field("uptime_s", uptime_.seconds());
  o.field("policy", to_string(config_.policy));
  o.field("backends", static_cast<std::uint64_t>(fleet->backends.size()));
  o.field("backends_up", static_cast<std::uint64_t>(up));
  o.field("backends_enabled", static_cast<std::uint64_t>(enabled));
  if (config_.catalog != nullptr) {
    o.field("catalog_generation",
            static_cast<std::uint64_t>(config_.catalog->generation()));
    o.field("catalog_size",
            static_cast<std::uint64_t>(config_.catalog->snapshot()->size()));
  }
  o.field("draining", draining_.load(std::memory_order_relaxed));
  return o.str();
}

std::string Router::metricsz_payload(const std::string& id) const {
  const MetricsSnapshot snap = metrics_->snapshot();
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("service", "eus_router");
  o.field("uptime_s", uptime_.seconds());
  append_snapshot(o, snap);
  return o.str();
}

std::string Router::admin_config_payload(const std::string& id) const {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("action", "get-config");
  o.field("service", "eus_router");
  o.field("port", static_cast<std::uint64_t>(port()));
  o.field("policy", to_string(config_.policy));
  o.field("health_period_s", config_.health_period_s);
  o.field("probe_timeout_ms", config_.probe_timeout_ms);
  o.field("max_backoff_s", config_.max_backoff_s);
  o.field("max_frame_bytes",
          static_cast<std::uint64_t>(config_.max_frame_bytes));
  std::string backends;
  append_backends_json(backends);
  o.raw("backends", backends);
  if (config_.catalog != nullptr) {
    o.field("catalog_generation",
            static_cast<std::uint64_t>(config_.catalog->generation()));
    o.field("catalog_size",
            static_cast<std::uint64_t>(config_.catalog->snapshot()->size()));
  }
  o.field("draining", draining_.load(std::memory_order_relaxed));
  return o.str();
}

std::string Router::adminz_payload(const serve::ServeRequest& request) {
  const serve::AdminRequest& admin = request.admin;
  metric_admin_actions_->add();
  const auto applied = [&](const char* extra_key, std::uint64_t extra) {
    JsonObject o;
    o.field("type", "response");
    if (!request.id.empty()) o.field("id", request.id);
    o.field("status", "ok");
    o.field("code", static_cast<std::int64_t>(kCodeOk));
    o.field("action", to_string(admin.action));
    o.field(extra_key, extra);
    return o.str();
  };
  switch (admin.action) {
    case serve::AdminAction::kGetConfig:
      return admin_config_payload(request.id);
    case serve::AdminAction::kEnableBackend:
    case serve::AdminAction::kDisableBackend: {
      const bool enable =
          admin.action == serve::AdminAction::kEnableBackend;
      if (!set_backend_enabled(admin.name, enable)) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no backend named \"" + admin.name +
                                 "\" in the fleet");
      }
      JsonObject o;
      o.field("type", "response");
      if (!request.id.empty()) o.field("id", request.id);
      o.field("status", "ok");
      o.field("code", static_cast<std::int64_t>(kCodeOk));
      o.field("action", to_string(admin.action));
      o.field("backend", admin.name);
      o.field("enabled", enable);
      return o.str();
    }
    case serve::AdminAction::kFleetReload: {
      FleetConfig next;
      try {
        next = parse_fleet_config(admin.fleet);
      } catch (const FleetConfigError& e) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             std::string("fleet rejected: ") + e.what());
      }
      const std::size_t backends = next.backends.size();
      reload_fleet(std::move(next));
      return applied("backends", backends);
    }
    case serve::AdminAction::kCatalogReload: {
      if (config_.catalog == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no scenario catalog configured; catalog-reload "
                             "has no target");
      }
      std::shared_ptr<const ScenarioCatalog> next;
      try {
        next = std::make_shared<const ScenarioCatalog>(admin.catalog);
      } catch (const std::invalid_argument& e) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             std::string("catalog rejected: ") + e.what());
      }
      const std::size_t scenarios = next->size();
      const std::uint64_t generation =
          config_.catalog->swap(std::move(next));
      JsonObject o;
      o.field("type", "response");
      if (!request.id.empty()) o.field("id", request.id);
      o.field("status", "ok");
      o.field("code", static_cast<std::int64_t>(kCodeOk));
      o.field("action", "catalog-reload");
      o.field("catalog_generation", generation);
      o.field("catalog_size", static_cast<std::uint64_t>(scenarios));
      return o.str();
    }
    case serve::AdminAction::kSetQueueDepth:
    case serve::AdminAction::kSetCacheEntries:
    case serve::AdminAction::kSetWorkers:
      return error_payload(request.id, kCodeBadRequest, "error",
                           "eus_router has no queue, cache or worker pool; "
                           "send set-* verbs to a backend daemon");
    case serve::AdminAction::kArchiveStats:
    case serve::AdminAction::kArchiveFlush:
    case serve::AdminAction::kArchiveCap:
      return error_payload(request.id, kCodeBadRequest, "error",
                           "eus_router holds no warm-start archive; send "
                           "archive-* verbs to the backend owning the "
                           "tenant (the ring's preference for its id)");
  }
  return error_payload(request.id, kCodeInternal, "error",
                       "unhandled admin action");
}

void Router::log_request(const serve::ServeRequest& request, int code,
                         double total_ms, const std::string& backend,
                         bool retried) {
  if (config_.log == nullptr) return;
  JsonObject o;
  o.field("type", "fleet_request");
  o.field("t_s", uptime_.seconds());
  if (!request.id.empty()) o.field("id", request.id);
  std::string mode{to_string(request.mode)};
  if (request.mode == serve::ModeKind::kHeuristic) {
    mode += std::string(":") + serve::heuristic_slug(request.heuristic);
  }
  o.field("mode", mode);
  o.field("kind", to_string(request.kind));
  o.field("scenario", request.kind == serve::RequestKind::kDelta
                          ? request.delta.base.name
                          : request.scenario.name);
  if (!request.tenant.empty()) o.field("tenant", request.tenant);
  o.field("code", static_cast<std::int64_t>(code));
  if (!backend.empty()) o.field("backend", backend);
  o.field("retried", retried);
  o.field("total_ms", total_ms);
  config_.log->write(o.str());
}

}  // namespace eus::fleet
