#pragma once

// eus_router's engine: a thin, protocol-preserving proxy in front of a
// fleet of eus_served backends.  Clients speak the exact same
// length-prefixed JSON protocol to the router that they would to a single
// daemon — the router parses each request just enough to schedule it, then
// forwards the payload and relays the response verbatim, so fleet-routed
// fronts are bit-identical to single-daemon ones.
//
// Scheduling (docs/fleet.md):
//  - Eligibility: Nix Machine-style capability tags per backend
//    (fleet/config.hpp) filter by request mode + resolved scenario.
//  - Cache affinity: cacheable requests (nsga2 / pareto-query) follow the
//    consistent-hash ring over the request fingerprint (fleet/ring.hpp),
//    so a scenario's cached front lives on a stable shard.  Catalog
//    aliases are resolved by the router *before* hashing — backends need
//    no catalog, and a reload never strands cached fronts.
//  - Policy: non-cacheable requests (and failover reordering) go through
//    the configured RoutePolicy (fleet/policy.hpp): round-robin, min-min
//    completion time, or max-utility-per-energy.
//  - Failover: a transport failure marks the backend down (passive health)
//    and the request retries exactly once on a different backend; the
//    periodic health checker (healthz probes with timeout + exponential
//    backoff) marks backends up again.
//
// The router executes nothing itself, so there is no worker queue:
// connection threads proxy inline, and backpressure is the per-backend
// max_in_flight cap plus each backend's own bounded queue.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_catalog.hpp"
#include "fleet/config.hpp"
#include "fleet/policy.hpp"
#include "fleet/ring.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"

namespace eus::fleet {

/// 502-style code for "every routable backend failed transport" (the
/// serve layer's codes stop at 503; the router adds the gateway case).
inline constexpr int kCodeBadGateway = 502;

struct RouterConfig {
  /// TCP port; 0 binds an ephemeral port.  Loopback only, like eus_served.
  std::uint16_t port = 0;
  FleetConfig fleet;
  RoutePolicy policy = RoutePolicy::kMinMin;
  /// Seconds between active healthz probes; 0 disables the prober (tests
  /// drive probe_now() directly; passive mark-down still applies).
  double health_period_s = 2.0;
  /// Per-probe connect/receive budget.
  double probe_timeout_ms = 1000.0;
  /// Down backends are re-probed with exponential backoff capped here.
  double max_backoff_s = 30.0;
  /// Cap on a proxied call's receive wait; 0 = wait forever (backends
  /// answer every accepted request, so the default trusts them).
  double backend_timeout_ms = 0.0;
  std::size_t max_frame_bytes = serve::kMaxFrameBytes;
  /// Optional external sinks (must outlive the router).
  MetricsRegistry* metrics = nullptr;
  serve::RequestLog* log = nullptr;
  /// Optional alias catalog: aliases resolve against its snapshot before
  /// fingerprinting/forwarding, and catalog-reload swaps it.
  SharedCatalog* catalog = nullptr;
};

/// Point-in-time public view of one backend (healthz/adminz and tests).
struct BackendInfo {
  std::string name;
  std::uint16_t port = 0;
  bool enabled = true;
  bool up = true;
  std::size_t in_flight = 0;
  std::size_t max_in_flight = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double speed_factor = 1.0;
  double watts = 1.0;
  std::vector<std::string> capabilities;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();  ///< stops if still running

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds, listens, spawns the acceptor and (when configured) the health
  /// prober.  Throws std::runtime_error when the port cannot be bound.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return acceptor_.port();
  }

  /// Async-signal-friendly: flips the drain flag and unblocks the
  /// acceptor (the daemon's signal thread calls this; stop() finishes).
  void request_stop() noexcept;

  /// Graceful drain: stop accepting, finish in-flight proxied calls,
  /// join every thread.  Idempotent.
  void stop();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  // Live administration (the adminz verbs land here; also callable
  // directly from tests).
  /// Returns false when no backend has that name.
  bool set_backend_enabled(const std::string& name, bool enabled);
  /// Swaps the fleet config atomically; backends present in both keep
  /// their health state, in-flight counts and counters.
  void reload_fleet(FleetConfig next);

  /// One synchronous health sweep over every backend due for a probe
  /// (ignores the backoff schedule when `force`).  The prober thread calls
  /// this periodically; tests call it directly.
  void probe_now(bool force = false);

  [[nodiscard]] std::vector<BackendInfo> backend_info() const;
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] RoutePolicy policy() const noexcept {
    return config_.policy;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Mutable per-backend runtime state; shared_ptr so a fleet reload can
  /// swap the set while proxied calls still hold their backend.
  struct Backend {
    BackendConfig config;
    std::atomic<bool> enabled{true};
    std::atomic<bool> up{true};
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> consecutive_failures{0};
    /// Next allowed probe, in Clock nanoseconds-since-epoch (atomic so the
    /// prober and force-probes need no lock).
    std::atomic<std::int64_t> next_probe_ns{0};
    Counter* metric_requests = nullptr;
    Counter* metric_failures = nullptr;
    Gauge* metric_in_flight = nullptr;

    std::mutex pool_mutex;
    std::vector<serve::ClientConnection> pool;  ///< idle, ready to reuse
  };

  /// One immutable fleet generation: the backend set plus the hash ring
  /// over it.  Snapshot-swapped on reload.
  struct Fleet {
    std::vector<std::shared_ptr<Backend>> backends;
    HashRing ring{64};
  };

  [[nodiscard]] std::shared_ptr<const Fleet> fleet_snapshot() const;
  [[nodiscard]] std::shared_ptr<Fleet> build_fleet(
      FleetConfig config, const Fleet* previous) const;

  void connection_loop(serve::ConnectionSet::Connection* connection);
  bool process_payload(serve::ConnectionSet::Connection* connection,
                       const std::string& payload);
  void send_payload(serve::ConnectionSet::Connection* connection,
                    const std::string& payload);

  /// Schedules + proxies one allocate request; returns the response
  /// payload to relay.
  [[nodiscard]] std::string route_allocate(serve::ServeRequest request,
                                           const std::string& payload);
  /// Ordered candidate backends for one request (eligible, enabled, up,
  /// under their in-flight cap), best first.  `affinity` is the
  /// consistent-hash ring key: the request fingerprint, or the tenant id
  /// for tenant-scoped requests (archive affinity).
  [[nodiscard]] std::vector<std::shared_ptr<Backend>> plan(
      const Fleet& fleet, const serve::ServeRequest& request,
      const std::string& affinity);
  /// One proxied call on one backend; empty optional = transport failure
  /// (the backend is already marked down and counted).
  [[nodiscard]] std::optional<std::string> forward(
      Backend& backend, const std::string& payload);

  void mark_down(Backend& backend);
  void mark_up(Backend& backend);
  bool probe_backend(Backend& backend);
  void prober_loop();

  [[nodiscard]] std::string healthz_payload(const std::string& id) const;
  [[nodiscard]] std::string metricsz_payload(const std::string& id) const;
  [[nodiscard]] std::string adminz_payload(
      const serve::ServeRequest& request);
  [[nodiscard]] std::string admin_config_payload(const std::string& id) const;
  void append_backends_json(std::string& out) const;
  void log_request(const serve::ServeRequest& request, int code,
                   double total_ms, const std::string& backend,
                   bool retried);

  RouterConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;

  mutable std::mutex fleet_mutex_;
  std::shared_ptr<const Fleet> fleet_;  ///< guarded by fleet_mutex_

  serve::Acceptor acceptor_;
  serve::ConnectionSet connections_;

  std::thread prober_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;  ///< guarded by prober_mutex_

  Stopwatch uptime_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> rr_ticket_{0};

  Counter* metric_requests_ = nullptr;
  Counter* metric_responses_ok_ = nullptr;
  Counter* metric_errors_ = nullptr;
  Counter* metric_retries_ = nullptr;
  Counter* metric_no_backend_ = nullptr;
  Counter* metric_upstream_failed_ = nullptr;
  Counter* metric_backend_down_ = nullptr;
  Counter* metric_backend_up_ = nullptr;
  Counter* metric_probes_ = nullptr;
  Counter* metric_admin_actions_ = nullptr;
  Counter* metric_fleet_reloads_ = nullptr;
  Gauge* metric_backends_up_ = nullptr;
  Histogram* metric_latency_ = nullptr;
};

}  // namespace eus::fleet
