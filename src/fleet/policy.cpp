#include "fleet/policy.hpp"

namespace eus::fleet {

const char* to_string(RoutePolicy p) noexcept {
  switch (p) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kMinMin:
      return "min-min";
    case RoutePolicy::kMaxUpe:
      return "max-upe";
  }
  return "?";
}

std::optional<RoutePolicy> policy_from_slug(std::string_view slug) noexcept {
  if (slug == "round-robin") return RoutePolicy::kRoundRobin;
  if (slug == "min-min") return RoutePolicy::kMinMin;
  if (slug == "max-upe") return RoutePolicy::kMaxUpe;
  return std::nullopt;
}

double request_cost_units(const serve::ServeRequest& request) {
  if (request.mode != serve::ModeKind::kNsga2) return 1.0;
  // One evolution evaluates ~population x generations genomes; normalize
  // to the protocol's default budget (32 x 32) so a default nsga2 request
  // costs ~1 unit and bigger budgets scale linearly.
  const double evaluations =
      static_cast<double>(request.nsga2.population) *
      static_cast<double>(request.nsga2.generations);
  const double units = evaluations / (32.0 * 32.0);
  return units < 1.0 ? 1.0 : units;
}

std::size_t choose_backend(RoutePolicy policy,
                           const std::vector<Candidate>& candidates,
                           double cost_units, std::uint64_t ticket) {
  if (candidates.size() == 1) return 0;
  if (policy == RoutePolicy::kRoundRobin) {
    return static_cast<std::size_t>(ticket % candidates.size());
  }
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const auto queued = static_cast<double>(c.in_flight + 1);
    double score = 0.0;
    if (policy == RoutePolicy::kMinMin) {
      // Lower is better; negate so one comparison direction serves both.
      score = -(queued * cost_units / c.speed_factor);
    } else {  // kMaxUpe
      score = c.speed_factor / (queued * c.watts);
    }
    if (i == 0 || score > best_score ||
        (score == best_score && c.name < candidates[best].name)) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace eus::fleet
