#pragma once

// Consistent-hash ring over backend names, weighted by speed factor.  The
// router hashes each allocate request's fingerprint (protocol.hpp) onto
// the ring so a scenario's cached front lives on a stable shard: repeated
// nsga2/pareto-query requests for the same fingerprint keep landing on the
// same backend's LRU cache, and adding or removing one backend of N remaps
// only ~1/N of the fingerprints (tested in test_fleet_ring).
//
// Plain FNV-1a on (name, replica) points — no cryptographic needs, just a
// deterministic, platform-independent spread.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eus::fleet {

/// Deterministic 64-bit FNV-1a (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

class HashRing {
 public:
  /// `replicas` virtual nodes per unit of weight keep the spread even with
  /// few backends; per-backend weight scales with its speed factor so fast
  /// machines own proportionally more of the keyspace.
  explicit HashRing(std::size_t replicas = 64) : replicas_(replicas) {}

  /// Adds `name` with `weight` (clamped >= 0.25 so a slow backend still
  /// owns a slice).  Call build order does not matter.
  void add(const std::string& name, double weight = 1.0);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t backends() const noexcept { return backends_; }

  /// The owner of `key`: the first ring point at or clockwise of
  /// hash(key).  Empty string on an empty ring.
  [[nodiscard]] std::string owner(std::string_view key) const;

  /// All distinct backends in ring order starting at `key`'s owner — the
  /// failover preference order (owner first, then its successors).
  [[nodiscard]] std::vector<std::string> preference(
      std::string_view key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t backend;  ///< index into names_
  };

  std::size_t replicas_;
  std::size_t backends_ = 0;
  std::vector<std::string> names_;
  std::vector<Point> points_;  ///< sorted by hash after add()
};

}  // namespace eus::fleet
