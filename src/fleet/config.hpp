#pragma once

// The fleet config: a set of backend descriptors modeled on Nix's
// remote-build `Machine` (capabilities, eligibility, speedFactor, enabled
// flag — SNIPPETS.md Snippet 2).  A JSON document
//
//   {"backends": [
//     {"name": "big", "port": 7471, "speed_factor": 2.0, "watts": 95,
//      "max_in_flight": 8, "capabilities": ["mode:nsga2"], "enabled": true},
//     ...
//   ]}
//
// describes each eus_served process the router may forward to.  Parsing is
// strict — duplicate names, bad ports, malformed capability tags and
// non-positive factors are configuration errors, not warnings — because a
// silently-dropped backend is the worst possible failure mode for a
// scheduler.  docs/fleet.md documents the format.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/json_value.hpp"

namespace eus::fleet {

/// Malformed fleet configuration; `what()` names the offending backend and
/// field.
class FleetConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One backend descriptor (Nix `Machine`-style).  Capability tags restrict
/// eligibility per dimension: a backend listing any "mode:<m>" tags serves
/// only those request modes, any "scenario:<s>" tags only those resolved
/// scenario names; "*" (or an empty list) accepts everything.
struct BackendConfig {
  std::string name;                ///< unique handle, [A-Za-z0-9_.-]+
  std::string host = "127.0.0.1";  ///< loopback only (127.0.0.1/localhost)
  std::uint16_t port = 0;          ///< required, 1..65535
  std::vector<std::string> capabilities;
  double speed_factor = 1.0;   ///< relative service rate (> 0); weights the
                               ///< hash ring and the cost-based policies
  double watts = 1.0;          ///< relative power draw (> 0); the energy
                               ///< side of the max-upe routing policy
  std::size_t max_in_flight = 32;  ///< router-enforced concurrency cap
  bool enabled = true;             ///< disabled backends never route
};

struct FleetConfig {
  std::vector<BackendConfig> backends;
};

/// Parses and validates one fleet document.  Throws FleetConfigError on
/// any violation (duplicate/invalid names, bad ports, non-loopback hosts,
/// unknown capability syntax, non-positive factors, zero max_in_flight,
/// empty backend list).
[[nodiscard]] FleetConfig parse_fleet_config(const util::JsonValue& doc);
[[nodiscard]] FleetConfig parse_fleet_config_text(std::string_view json);

/// Reads and parses a fleet config file.  Throws std::runtime_error when
/// unreadable, FleetConfigError when invalid.
[[nodiscard]] FleetConfig load_fleet_config(const std::string& path);

/// Whether a backend with `capabilities` may serve a request of mode slug
/// `mode` ("heuristic" | "nsga2" | "pareto-query") against the resolved
/// scenario `scenario`.  Dimension-wise: listing any tags of a dimension
/// whitelists that dimension; "*" or no tags of the dimension accepts all.
[[nodiscard]] bool capabilities_allow(
    const std::vector<std::string>& capabilities, std::string_view mode,
    std::string_view scenario);

}  // namespace eus::fleet
