#include "workload/trace.hpp"

#include <stdexcept>

namespace eus {

Trace::Trace(std::vector<TaskInstance> tasks, TufClassLibrary tuf_classes)
    : tasks_(std::move(tasks)), tuf_classes_(std::move(tuf_classes)) {
  double prev = 0.0;
  for (const auto& t : tasks_) {
    if (t.arrival < 0.0) throw std::invalid_argument("negative arrival");
    if (t.arrival < prev) {
      throw std::invalid_argument("trace must be sorted by arrival");
    }
    if (t.tuf_class >= tuf_classes_.classes().size()) {
      throw std::invalid_argument("task references unknown TUF class");
    }
    prev = t.arrival;
  }
}

double Trace::utility_upper_bound() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    total += tuf_of(i).value(0.0);
  }
  return total;
}

double Trace::window() const noexcept {
  return tasks_.empty() ? 0.0 : tasks_.back().arrival;
}

void Trace::validate_against(const SystemModel& system) const {
  for (const auto& t : tasks_) {
    if (t.type >= system.num_task_types()) {
      throw std::invalid_argument("task references unknown task type");
    }
    if (system.eligible_machines(t.type).empty()) {
      throw std::invalid_argument("task type has no eligible machines");
    }
  }
}

}  // namespace eus
