#pragma once

// The paper's three experimental scenarios (§V-A):
//
//   dataset 1 — the real 5x9 historical data, one machine per type,
//               250 tasks arriving over 15 minutes;
//   dataset 2 — synthetic expansion (30 task types, 13 machine types,
//               30 machines per Table III), 1000 tasks over 15 minutes;
//   dataset 3 — same expanded system, 4000 tasks over one hour.
//
// Scenario construction is fully deterministic given the seed.

#include <string>

#include "data/system.hpp"
#include "synth/generator.hpp"
#include "workload/trace.hpp"

namespace eus {

struct Scenario {
  std::string name;
  SystemModel system;
  Trace trace;
  double window_seconds = 0.0;
};

/// Table III machine-instance counts for the expanded system, ordered
/// [nine general types in Table I order..., special A..D].
[[nodiscard]] std::vector<std::size_t> table3_instance_counts();

[[nodiscard]] Scenario make_dataset1(std::uint64_t seed);
[[nodiscard]] Scenario make_dataset2(std::uint64_t seed);
[[nodiscard]] Scenario make_dataset3(std::uint64_t seed);

/// The expanded (dataset 2/3) system alone — exposed for benches that only
/// need the machine/task catalogs (e.g. the Table III printer).
[[nodiscard]] ExpandedSystem make_expanded_system(std::uint64_t seed);

/// Builds a scenario over an arbitrary system (used by examples/tests to
/// make small custom studies).
[[nodiscard]] Scenario make_custom_scenario(std::string name,
                                            SystemModel system,
                                            std::size_t num_tasks,
                                            double window_seconds,
                                            std::uint64_t seed);

}  // namespace eus
