#include "workload/trace_io.hpp"

#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace eus {
namespace {

const char* shape_token(TufInterval::Shape s) {
  switch (s) {
    case TufInterval::Shape::kConstant:
      return "const";
    case TufInterval::Shape::kLinear:
      return "lin";
    case TufInterval::Shape::kExponential:
      return "exp";
  }
  return "lin";
}

TufInterval::Shape parse_shape(const std::string& token) {
  if (token == "const") return TufInterval::Shape::kConstant;
  if (token == "lin") return TufInterval::Shape::kLinear;
  if (token == "exp") return TufInterval::Shape::kExponential;
  throw std::runtime_error("unknown TUF interval shape: " + token);
}

std::string intervals_to_string(const std::vector<TufInterval>& intervals) {
  std::ostringstream os;
  for (const auto& iv : intervals) {
    os << '{' << format_double(iv.duration, 9) << ';'
       << format_double(iv.begin_fraction, 9) << ';'
       << format_double(iv.end_fraction, 9) << ';'
       << format_double(iv.urgency_modifier, 9) << ';'
       << shape_token(iv.shape) << '}';
  }
  return os.str();
}

double parse_number(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::runtime_error("");
    return v;
  } catch (...) {
    throw std::runtime_error(std::string("bad ") + what + ": '" + text + "'");
  }
}

std::vector<TufInterval> parse_intervals(const std::string& text) {
  std::vector<TufInterval> intervals;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] != '{') throw std::runtime_error("expected '{' in intervals");
    const std::size_t close = text.find('}', pos);
    if (close == std::string::npos) {
      throw std::runtime_error("unterminated TUF interval");
    }
    const std::string body = text.substr(pos + 1, close - pos - 1);
    std::vector<std::string> fields;
    std::istringstream ss(body);
    std::string field;
    while (std::getline(ss, field, ';')) fields.push_back(field);
    if (fields.size() != 5) {
      throw std::runtime_error("TUF interval needs 5 fields: " + body);
    }
    TufInterval iv;
    iv.duration = parse_number(fields[0], "duration");
    iv.begin_fraction = parse_number(fields[1], "begin fraction");
    iv.end_fraction = parse_number(fields[2], "end fraction");
    iv.urgency_modifier = parse_number(fields[3], "urgency modifier");
    iv.shape = parse_shape(fields[4]);
    intervals.push_back(iv);
    pos = close + 1;
  }
  return intervals;
}

}  // namespace

std::string trace_to_string(const Trace& trace) {
  std::ostringstream os;
  CsvWriter csv(os);

  os << "[tuf-classes]\n";
  csv.write_row({"name", "weight", "priority", "urgency", "intervals"});
  for (const auto& c : trace.tuf_classes().classes()) {
    csv.write_row({c.name, format_double(c.weight, 9),
                   format_double(c.function.priority(), 9),
                   format_double(c.function.urgency(), 9),
                   intervals_to_string(c.function.intervals())});
  }

  os << "[tasks]\n";
  csv.write_row({"type", "arrival", "tuf_class"});
  for (const auto& t : trace.tasks()) {
    csv.write_row({std::to_string(t.type), format_double(t.arrival, 9),
                   std::to_string(t.tuf_class)});
  }
  return os.str();
}

Trace trace_from_string(const std::string& text) {
  // Split into the two sections first (sections are plain lines, bodies are
  // CSV).
  const std::size_t classes_at = text.find("[tuf-classes]");
  const std::size_t tasks_at = text.find("[tasks]");
  if (classes_at == std::string::npos || tasks_at == std::string::npos ||
      tasks_at < classes_at) {
    throw std::runtime_error("trace file needs [tuf-classes] then [tasks]");
  }
  const std::string classes_csv = text.substr(
      classes_at + std::string("[tuf-classes]\n").size(),
      tasks_at - classes_at - std::string("[tuf-classes]\n").size());
  const std::string tasks_csv =
      text.substr(tasks_at + std::string("[tasks]\n").size());

  const auto class_rows = parse_csv(classes_csv);
  if (class_rows.size() < 2) {
    throw std::runtime_error("no TUF classes in trace file");
  }
  std::vector<TufClass> classes;
  for (std::size_t r = 1; r < class_rows.size(); ++r) {
    const auto& row = class_rows[r];
    if (row.size() != 5) throw std::runtime_error("bad TUF class row");
    classes.push_back(
        {row[0], parse_number(row[1], "weight"),
         TimeUtilityFunction(parse_number(row[2], "priority"),
                             parse_number(row[3], "urgency"),
                             parse_intervals(row[4]))});
  }

  const auto task_rows = parse_csv(tasks_csv);
  if (task_rows.empty()) throw std::runtime_error("no task header");
  std::vector<TaskInstance> tasks;
  for (std::size_t r = 1; r < task_rows.size(); ++r) {
    const auto& row = task_rows[r];
    if (row.size() != 3) throw std::runtime_error("bad task row");
    TaskInstance t;
    t.type = static_cast<std::size_t>(parse_number(row[0], "task type"));
    t.arrival = parse_number(row[1], "arrival");
    t.tuf_class = static_cast<std::size_t>(parse_number(row[2], "tuf class"));
    tasks.push_back(t);
  }

  return Trace(std::move(tasks), TufClassLibrary(std::move(classes)));
}

}  // namespace eus
