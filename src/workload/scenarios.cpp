#include "workload/scenarios.hpp"

#include "data/historical.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

// TUF horizons are set relative to twice the arrival window so that a
// well-scheduled trace earns substantial utility while late completions
// decay toward zero — the regime the paper's fronts live in.
constexpr double kTufTimeScaleFactor = 2.0;

Scenario build(std::string name, SystemModel system, std::size_t num_tasks,
               double window_seconds, Rng rng) {
  const TufClassLibrary tufs =
      standard_tuf_classes(kTufTimeScaleFactor * window_seconds);
  TraceConfig config;
  config.num_tasks = num_tasks;
  config.window_seconds = window_seconds;
  Trace trace = generate_trace(system, tufs, config, rng);
  return Scenario{std::move(name), std::move(system), std::move(trace),
                  window_seconds};
}

}  // namespace

std::vector<std::size_t> table3_instance_counts() {
  // Table I order: A8, FX, i3-2120, i5-2400S, i5-2500K, 3960X, 3960X@4.2,
  // 3770K, 3770K@4.3 — then special A..D.  Totals 30 machines (Table III).
  return {2, 3, 3, 3, 2, 4, 2, 5, 2, 1, 1, 1, 1};
}

ExpandedSystem make_expanded_system(std::uint64_t seed) {
  Rng rng(seed);
  Rng expansion_rng = rng.split();
  const SystemModel base = historical_system();
  const ExpansionConfig cfg;  // paper defaults: +25 tasks, 4 specials, 10x
  return expand_system(base, cfg, table3_instance_counts(), expansion_rng);
}

Scenario make_dataset1(std::uint64_t seed) {
  Rng rng(seed);
  return build("dataset1-real-5x9", historical_system(), 250, 15.0 * 60.0,
               rng.split());
}

Scenario make_dataset2(std::uint64_t seed) {
  Rng rng(seed);
  ExpandedSystem expanded = make_expanded_system(seed);
  (void)rng.split();  // keep stream layout aligned with make_dataset1
  return build("dataset2-synthetic-1000", std::move(expanded.model), 1000,
               15.0 * 60.0, rng.split());
}

Scenario make_dataset3(std::uint64_t seed) {
  Rng rng(seed);
  ExpandedSystem expanded = make_expanded_system(seed);
  (void)rng.split();
  return build("dataset3-synthetic-4000", std::move(expanded.model), 4000,
               60.0 * 60.0, rng.split());
}

Scenario make_custom_scenario(std::string name, SystemModel system,
                              std::size_t num_tasks, double window_seconds,
                              std::uint64_t seed) {
  Rng rng(seed);
  return build(std::move(name), std::move(system), num_tasks, window_seconds,
               rng.split());
}

}  // namespace eus
