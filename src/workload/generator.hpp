#pragma once

// Trace synthesis: Poisson arrivals over a window, task types drawn from a
// categorical mix, TUF classes drawn from a policy library.  This stands in
// for the ESSC operational traces the paper models (see DESIGN.md
// substitution 2).

#include <cstddef>
#include <vector>

#include "tuf/classes.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace eus {

/// `count` arrival times of a homogeneous Poisson process on [0, window],
/// conditioned on exactly `count` arrivals (i.e. sorted U(0, window)
/// draws), which is the standard exact construction.
[[nodiscard]] std::vector<double> poisson_arrivals(std::size_t count,
                                                   double window, Rng& rng);

/// Bursty arrivals: tasks cluster around ~count/burst_factor uniformly
/// placed burst centers with tight Gaussian jitter.  Interarrival CV > 1
/// (overdispersed vs Poisson) for burst_factor > 1; models the batch-y
/// submission patterns operational traces exhibit.  Requires
/// burst_factor >= 1.
[[nodiscard]] std::vector<double> bursty_arrivals(std::size_t count,
                                                  double window,
                                                  double burst_factor,
                                                  Rng& rng);

/// Deterministic evenly spaced arrivals (i * window / count): interarrival
/// CV ~ 0, the underdispersed extreme.
[[nodiscard]] std::vector<double> periodic_arrivals(std::size_t count,
                                                    double window);

enum class ArrivalProcess { kPoisson, kBursty, kPeriodic };

[[nodiscard]] const char* to_string(ArrivalProcess p) noexcept;

struct TraceConfig {
  std::size_t num_tasks = 0;
  double window_seconds = 0.0;
  /// Relative draw weight per task type; empty = uniform over all types.
  std::vector<double> type_weights;
  /// Arrival-time process (paper model: Poisson).
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Mean tasks per burst for kBursty (>= 1).
  double burst_factor = 8.0;
};

/// Generates a trace against `system`'s task catalog.  Throws
/// std::invalid_argument on bad config (zero tasks/window, weight size
/// mismatch, all-zero weights).
[[nodiscard]] Trace generate_trace(const SystemModel& system,
                                   const TufClassLibrary& tuf_classes,
                                   const TraceConfig& config, Rng& rng);

}  // namespace eus
