#pragma once

// Trace persistence: save/load a full workload trace — task instances plus
// the TUF class library governing them — as two CSV blocks in one file, so
// users can capture traces from their own systems and replay them through
// the framework.
//
// Format (one file, two sections):
//
//   [tuf-classes]
//   name,weight,priority,urgency,intervals
//   urgent-high,1,16,2,"{0.6;1;0.05;1;exp}{0.0006;0.05;0;1;lin}"
//   [tasks]
//   type,arrival,tuf_class
//   3,12.25,0
//
// Interval tuples are {duration;begin;end;modifier;shape} with shape one of
// const/lin/exp.

#include <string>

#include "workload/trace.hpp"

namespace eus {

/// Serializes the trace (and its TUF library) to the format above.
[[nodiscard]] std::string trace_to_string(const Trace& trace);

/// Parses trace_to_string() output; throws std::runtime_error on malformed
/// input (unknown sections, bad numbers, invalid TUFs, unsorted arrivals).
[[nodiscard]] Trace trace_from_string(const std::string& text);

}  // namespace eus
