#pragma once

// Workload characterization: the numbers an administrator checks before
// trusting any scheduling study — how loaded is the suite, how bursty are
// the arrivals, what's in the mix.

#include <vector>

#include "workload/trace.hpp"

namespace eus {

struct WorkloadAnalysis {
  std::size_t tasks = 0;
  double window = 0.0;          ///< last arrival (seconds)
  double mean_interarrival = 0.0;
  double cv_interarrival = 0.0;  ///< ~1 for Poisson
  /// Offered load: total mean work (row-average ETC per task) divided by
  /// (machines x window).  > 1 means the trace cannot finish within its
  /// own window even with perfect packing.
  double offered_load = 0.0;
  /// Mean work seconds per task (row-average ETC over eligible machines).
  double mean_task_work = 0.0;
  /// Task count per task type (indexed by type).
  std::vector<std::size_t> type_counts;
  /// Max utility at stake per TUF class (indexed by class).
  std::vector<double> class_utility;
};

/// Characterizes `trace` against `system`.  Works for empty traces (all
/// zeros).
[[nodiscard]] WorkloadAnalysis analyze_workload(const SystemModel& system,
                                                const Trace& trace);

/// Renders the analysis as an ASCII block (for examples/benches).
[[nodiscard]] std::string workload_report(const SystemModel& system,
                                          const Trace& trace);

}  // namespace eus
