#pragma once

// A workload trace: the recorded arrivals of typed tasks over a time window
// (§III-C).  The paper performs *post-mortem static* allocation — the whole
// trace, including every arrival time, is known up front — so a Trace is an
// immutable value consumed by heuristics and the NSGA-II evaluator.

#include <cstddef>
#include <vector>

#include "data/system.hpp"
#include "tuf/classes.hpp"

namespace eus {

struct TaskInstance {
  std::size_t type = 0;       ///< index into SystemModel::task_types
  double arrival = 0.0;       ///< seconds from trace start
  std::size_t tuf_class = 0;  ///< index into the trace's TufClassLibrary
};

class Trace {
 public:
  /// Tasks must be sorted by arrival (ties allowed) and reference valid TUF
  /// classes; throws std::invalid_argument otherwise.
  Trace(std::vector<TaskInstance> tasks, TufClassLibrary tuf_classes);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] const std::vector<TaskInstance>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const TaskInstance& task(std::size_t i) const {
    return tasks_.at(i);
  }
  [[nodiscard]] const TufClassLibrary& tuf_classes() const noexcept {
    return tuf_classes_;
  }

  /// The TUF governing task i (hot path, unchecked).
  [[nodiscard]] const TimeUtilityFunction& tuf_of(std::size_t i) const noexcept {
    return tuf_classes_.classes()[tasks_[i].tuf_class].function;
  }

  /// Maximum total utility if every task completed instantly on arrival.
  [[nodiscard]] double utility_upper_bound() const noexcept;

  /// Latest arrival time in the trace (0 when empty).
  [[nodiscard]] double window() const noexcept;

  /// Checks that every task's type exists and is executable in `system`.
  void validate_against(const SystemModel& system) const;

 private:
  std::vector<TaskInstance> tasks_;
  TufClassLibrary tuf_classes_;
};

}  // namespace eus
