#include "workload/analysis.hpp"

#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace eus {

WorkloadAnalysis analyze_workload(const SystemModel& system,
                                  const Trace& trace) {
  trace.validate_against(system);
  WorkloadAnalysis a;
  a.tasks = trace.size();
  a.type_counts.assign(system.num_task_types(), 0);
  a.class_utility.assign(trace.tuf_classes().classes().size(), 0.0);
  if (trace.size() == 0) return a;

  a.window = trace.window();

  // Interarrival statistics.
  double sum = 0.0, sum_sq = 0.0;
  std::size_t gaps = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double gap =
        trace.tasks()[i].arrival - trace.tasks()[i - 1].arrival;
    sum += gap;
    sum_sq += gap * gap;
    ++gaps;
  }
  if (gaps > 0) {
    a.mean_interarrival = sum / static_cast<double>(gaps);
    const double var =
        sum_sq / static_cast<double>(gaps) -
        a.mean_interarrival * a.mean_interarrival;
    a.cv_interarrival = a.mean_interarrival > 0.0
                            ? std::sqrt(std::max(var, 0.0)) /
                                  a.mean_interarrival
                            : 0.0;
  }

  // Work content and mixes.
  double total_work = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    ++a.type_counts[task.type];
    a.class_utility[task.tuf_class] += trace.tuf_of(i).value(0.0);

    double mean_etc = 0.0;
    const auto& eligible = system.eligible_machines(task.type);
    for (const int m : eligible) {
      mean_etc += system.etc_on(task.type, static_cast<std::size_t>(m));
    }
    total_work += mean_etc / static_cast<double>(eligible.size());
  }
  a.mean_task_work = total_work / static_cast<double>(trace.size());
  if (a.window > 0.0) {
    a.offered_load = total_work / (static_cast<double>(system.num_machines()) *
                                   a.window);
  }
  return a;
}

std::string workload_report(const SystemModel& system, const Trace& trace) {
  const WorkloadAnalysis a = analyze_workload(system, trace);
  std::ostringstream os;
  os << "workload: " << a.tasks << " tasks over "
     << format_double(a.window, 0) << " s\n"
     << "  interarrival: mean " << format_double(a.mean_interarrival, 2)
     << " s, cv " << format_double(a.cv_interarrival, 2)
     << " (Poisson ~ 1)\n"
     << "  mean work per task: " << format_double(a.mean_task_work, 1)
     << " s, offered load: " << format_double(a.offered_load, 2)
     << " x suite capacity\n";

  AsciiTable types({"task type", "count"});
  for (std::size_t t = 0; t < a.type_counts.size(); ++t) {
    if (a.type_counts[t] > 0) {
      types.add_row({system.task_types()[t].name,
                     std::to_string(a.type_counts[t])});
    }
  }
  os << types.render();

  AsciiTable classes({"TUF class", "max utility at stake"});
  for (std::size_t c = 0; c < a.class_utility.size(); ++c) {
    if (a.class_utility[c] > 0.0) {
      classes.add_row({trace.tuf_classes().classes()[c].name,
                       format_double(a.class_utility[c], 1)});
    }
  }
  os << classes.render();
  return os.str();
}

}  // namespace eus
