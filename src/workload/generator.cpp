#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eus {

std::vector<double> poisson_arrivals(std::size_t count, double window,
                                     Rng& rng) {
  if (!(window > 0.0)) throw std::invalid_argument("window must be positive");
  std::vector<double> times(count);
  for (double& t : times) t = rng.uniform(0.0, window);
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<double> bursty_arrivals(std::size_t count, double window,
                                    double burst_factor, Rng& rng) {
  if (!(window > 0.0)) throw std::invalid_argument("window must be positive");
  if (!(burst_factor >= 1.0)) {
    throw std::invalid_argument("burst_factor must be >= 1");
  }
  const auto bursts = static_cast<std::size_t>(std::max(
      1.0, std::ceil(static_cast<double>(count) / burst_factor)));
  std::vector<double> centers(bursts);
  for (double& c : centers) c = rng.uniform(0.0, window);

  const double jitter =
      window / (8.0 * static_cast<double>(bursts));  // tight clusters
  std::vector<double> times(count);
  for (double& t : times) {
    const double center = centers[rng.below(bursts)];
    t = std::clamp(center + rng.normal(0.0, jitter), 0.0, window);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<double> periodic_arrivals(std::size_t count, double window) {
  if (!(window > 0.0)) throw std::invalid_argument("window must be positive");
  std::vector<double> times(count);
  for (std::size_t i = 0; i < count; ++i) {
    times[i] = window * static_cast<double>(i) / static_cast<double>(
                                                     std::max<std::size_t>(
                                                         count, 1));
  }
  return times;
}

const char* to_string(ArrivalProcess p) noexcept {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kPeriodic:
      return "periodic";
  }
  return "unknown";
}

Trace generate_trace(const SystemModel& system,
                     const TufClassLibrary& tuf_classes,
                     const TraceConfig& config, Rng& rng) {
  if (config.num_tasks == 0) throw std::invalid_argument("num_tasks == 0");

  std::vector<double> weights = config.type_weights;
  if (weights.empty()) {
    weights.assign(system.num_task_types(), 1.0);
  }
  if (weights.size() != system.num_task_types()) {
    throw std::invalid_argument("type_weights size mismatch");
  }
  std::vector<double> cumulative(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("negative type weight");
    total += weights[i];
    cumulative[i] = total;
  }
  if (!(total > 0.0)) throw std::invalid_argument("all-zero type weights");

  std::vector<double> arrivals;
  switch (config.arrivals) {
    case ArrivalProcess::kPoisson:
      arrivals = poisson_arrivals(config.num_tasks, config.window_seconds,
                                  rng);
      break;
    case ArrivalProcess::kBursty:
      arrivals = bursty_arrivals(config.num_tasks, config.window_seconds,
                                 config.burst_factor, rng);
      break;
    case ArrivalProcess::kPeriodic:
      arrivals = periodic_arrivals(config.num_tasks, config.window_seconds);
      break;
  }

  std::vector<TaskInstance> tasks;
  tasks.reserve(config.num_tasks);
  for (const double arrival : arrivals) {
    const double u = rng.uniform(0.0, total);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const auto type = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(weights.size()) - 1));
    tasks.push_back({type, arrival, tuf_classes.sample_index(rng)});
  }

  Trace trace(std::move(tasks), tuf_classes);
  trace.validate_against(system);
  return trace;
}

}  // namespace eus
