#pragma once

// The Figure-5 analysis: locate the region of a Pareto front where utility
// earned *per unit energy spent* peaks — "the location where the system is
// operating as efficiently as possible" (§VI).  Subplot B of the figure is
// U/E vs utility, subplot C is U/E vs energy; the peak of both identifies
// the circled region on the front.

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

struct KneeAnalysis {
  /// Front points ascending in energy (the input, cleaned).
  std::vector<EUPoint> front;
  /// utility/energy ratio per front point (same order).
  std::vector<double> ratio;
  /// Index of the peak-ratio point.
  std::size_t peak_index = 0;
  /// The peak point and its ratio.
  EUPoint peak{};
  double peak_ratio = 0.0;
  /// Indices whose ratio is within `region_tolerance` of the peak — the
  /// "circled region" of Figures 3-6.
  std::vector<std::size_t> region;
};

/// Runs the analysis; `region_tolerance` is the relative ratio slack that
/// delimits the efficient-operation region (default 2%).  Points with
/// non-positive energy are rejected (std::invalid_argument); an empty
/// input yields an empty analysis.
[[nodiscard]] KneeAnalysis analyze_utility_per_energy(
    const std::vector<EUPoint>& points, double region_tolerance = 0.02);

/// An alternative knee definition for comparison with the paper's U/E
/// peak: the front point farthest (perpendicular, in normalized objective
/// space) above the chord joining the front's two extremes — "maximum
/// bulge".  Returns the index into pareto_front(points); 0 for fronts of
/// fewer than three points.  Same preconditions as the U/E analysis.
[[nodiscard]] std::size_t chord_knee_index(const std::vector<EUPoint>& points);

}  // namespace eus
