#pragma once

// Pareto-front extraction and representation.

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

/// Canonical front presentation order: ascending energy, ties broken by
/// *descending* utility — the sweep order of nondominated_indices().
/// Nsga2::front() sorts by the same comparator so checkpoint dumps are
/// ordered consistently everywhere.
[[nodiscard]] constexpr bool front_order_less(const EUPoint& a,
                                              const EUPoint& b) noexcept {
  if (a.energy != b.energy) return a.energy < b.energy;
  return a.utility > b.utility;
}

/// Indices of the nondominated members of `points` (rank-1 set), in
/// ascending-energy order.  Duplicates of a nondominated point are all
/// kept.  O(n log n).
[[nodiscard]] std::vector<std::size_t> nondominated_indices(
    const std::vector<EUPoint>& points);

/// The nondominated points themselves, ascending in energy (and therefore
/// non-decreasing in utility along the front).
[[nodiscard]] std::vector<EUPoint> pareto_front(
    const std::vector<EUPoint>& points);

/// True iff no member of `points` dominates another (i.e. it is a valid
/// mutually-nondominated set).
[[nodiscard]] bool is_mutually_nondominated(const std::vector<EUPoint>& points);

}  // namespace eus
