#pragma once

// Quality indicators for comparing Pareto fronts: hypervolume (2-D exact),
// Zitzler's coverage C-metric, and Deb's spread Δ.  Used by the benches to
// quantify the seed-vs-random conclusions of §VI.

#include <vector>

#include "pareto/point.hpp"

namespace eus {

/// Exact 2-D hypervolume of the region dominated by `front` and bounded by
/// `reference` (which must be weakly dominated by every front point:
/// reference.energy >= each energy, reference.utility <= each utility).
/// Dominated members of `front` are ignored.  Returns 0 for empty input.
[[nodiscard]] double hypervolume(const std::vector<EUPoint>& front,
                                 const EUPoint& reference);

/// Zitzler's C(A, B): the fraction of B weakly dominated by at least one
/// member of A.  C(A,B)=1 means A covers all of B; not symmetric.
/// Returns 0 when B is empty.
[[nodiscard]] double coverage(const std::vector<EUPoint>& a,
                              const std::vector<EUPoint>& b);

/// Deb's spread Δ over the front (lower = more uniform spacing).  Needs at
/// least two distinct points; returns 0 otherwise.
[[nodiscard]] double spread(const std::vector<EUPoint>& front);

/// Reference point enclosing every point of every listed set, padded by
/// `margin` (relative).  Handy for comparable hypervolumes across
/// checkpoints.
[[nodiscard]] EUPoint enclosing_reference(
    const std::vector<std::vector<EUPoint>>& sets, double margin = 0.05);

/// Additive epsilon indicator I_eps+(A, B): the smallest shift e such that
/// every b in B is weakly dominated by some a in A moved e toward "worse"
/// in both objectives (a.energy - e <= b.energy is NOT the direction —
/// formally: min e s.t. for all b, exists a with a.energy - e <= b.energy
/// and a.utility + e >= b.utility).  0 when A already covers B; negative
/// values mean A strictly dominates B everywhere.  Throws on empty inputs.
[[nodiscard]] double epsilon_indicator(const std::vector<EUPoint>& a,
                                       const std::vector<EUPoint>& b);

/// Generational distance: average Euclidean distance from each member of
/// `front` to its nearest member of `reference` (lower = closer).  Throws
/// on empty inputs.  Objectives are used unnormalized — normalize upstream
/// if the scales differ wildly.
[[nodiscard]] double generational_distance(
    const std::vector<EUPoint>& front, const std::vector<EUPoint>& reference);

/// Inverted generational distance: generational_distance(reference, front)
/// — measures coverage of the reference by the front.
[[nodiscard]] double inverted_generational_distance(
    const std::vector<EUPoint>& front, const std::vector<EUPoint>& reference);

}  // namespace eus
