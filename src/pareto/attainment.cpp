#include "pareto/attainment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "pareto/front.hpp"

namespace eus {
namespace {

constexpr double kNone = -std::numeric_limits<double>::infinity();

/// Highest utility this (cleaned, energy-ascending) front reaches with
/// energy <= x; kNone when even its cheapest point costs more than x.
double best_utility_within(const std::vector<EUPoint>& front, double x) {
  double best = kNone;
  for (const auto& p : front) {
    if (p.energy > x) break;
    best = p.utility;  // utilities ascend along the cleaned front
  }
  return best;
}

}  // namespace

std::size_t attainment_count(const std::vector<std::vector<EUPoint>>& fronts,
                             const EUPoint& p) {
  std::size_t count = 0;
  for (const auto& raw : fronts) {
    for (const auto& q : raw) {
      if (q.energy <= p.energy && q.utility >= p.utility) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<EUPoint> attainment_front(
    const std::vector<std::vector<EUPoint>>& fronts, std::size_t k) {
  if (fronts.empty()) {
    throw std::invalid_argument("attainment needs >= 1 front");
  }
  if (k < 1 || k > fronts.size()) {
    throw std::invalid_argument("k must lie in [1, number of fronts]");
  }

  std::vector<std::vector<EUPoint>> clean;
  clean.reserve(fronts.size());
  std::vector<double> energies;
  for (const auto& raw : fronts) {
    clean.push_back(pareto_front(raw));
    if (clean.back().empty()) {
      throw std::invalid_argument("attainment fronts must be non-empty");
    }
    for (const auto& p : clean.back()) energies.push_back(p.energy);
  }
  std::sort(energies.begin(), energies.end());
  energies.erase(std::unique(energies.begin(), energies.end()),
                 energies.end());

  // At each candidate energy, the k-th largest per-run achievable utility.
  std::vector<EUPoint> boundary;
  std::vector<double> per_run(clean.size());
  for (const double x : energies) {
    for (std::size_t r = 0; r < clean.size(); ++r) {
      per_run[r] = best_utility_within(clean[r], x);
    }
    std::nth_element(per_run.begin(),
                     per_run.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     per_run.end(), std::greater<double>());
    const double u = per_run[k - 1];
    if (u != kNone) boundary.push_back({x, u});
  }
  return pareto_front(boundary);
}

}  // namespace eus
