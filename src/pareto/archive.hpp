#pragma once

// An external Pareto archive: the all-time nondominated set across any
// stream of candidate solutions (e.g. every front of every seeded
// population in a study).  Optionally capacity-bounded, pruning the most
// crowded interior member first so the archive keeps its extremes and an
// even spread — the same principle as NSGA-II's crowding truncation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

class ParetoArchive {
 public:
  struct Entry {
    EUPoint point;
    /// Caller-supplied identifier (population index, genome id, ...).
    std::size_t tag = 0;
    /// Optional genome fingerprint (FitnessCache::fingerprint); 0 = unknown.
    /// A nonzero fingerprint already present in the archive rejects the
    /// insertion, so one genome can never occupy two slots.
    std::uint64_t fingerprint = 0;
  };

  /// capacity 0 = unbounded.
  explicit ParetoArchive(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Inserts if no archived point dominates or equals `p`; evicts any
  /// archived points `p` dominates.  Returns true when inserted.  When the
  /// archive exceeds its capacity, the most crowded member is dropped
  /// (never the lowest-energy or highest-utility extreme); exact crowding
  /// ties evict the lowest-energy tied interior member, so eviction order
  /// is deterministic for any insertion sequence.  A nonzero `fingerprint`
  /// matching an archived entry is rejected as a duplicate genome.
  bool insert(const EUPoint& p, std::size_t tag = 0,
              std::uint64_t fingerprint = 0);

  /// Convenience: inserts a whole front.
  std::size_t insert_all(const std::vector<EUPoint>& points,
                         std::size_t tag = 0);

  /// Entries in ascending energy (and therefore ascending utility).
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The archived points only (ascending energy).
  [[nodiscard]] std::vector<EUPoint> points() const;

  /// True iff `p` is dominated by (or equal to) an archived point.
  [[nodiscard]] bool covers(const EUPoint& p) const;

 private:
  void prune();

  std::size_t capacity_;
  std::vector<Entry> entries_;  ///< kept sorted by ascending energy
};

}  // namespace eus
