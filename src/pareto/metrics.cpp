#include "pareto/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "pareto/front.hpp"

namespace eus {

double hypervolume(const std::vector<EUPoint>& front,
                   const EUPoint& reference) {
  const std::vector<EUPoint> clean = pareto_front(front);
  if (clean.empty()) return 0.0;
  for (const auto& p : clean) {
    if (p.energy > reference.energy || p.utility < reference.utility) {
      throw std::invalid_argument(
          "reference point must be weakly dominated by the whole front");
    }
  }
  // clean is ascending in energy and utility.  Sweep right-to-left: the
  // best (highest-utility) point owns the slab from its energy to the
  // previous point's energy.
  double volume = 0.0;
  double right_edge = reference.energy;
  for (auto it = clean.rbegin(); it != clean.rend(); ++it) {
    volume += (right_edge - it->energy) * (it->utility - reference.utility);
    right_edge = it->energy;
  }
  return volume;
}

double coverage(const std::vector<EUPoint>& a, const std::vector<EUPoint>& b) {
  if (b.empty()) return 0.0;
  std::size_t covered = 0;
  for (const auto& pb : b) {
    for (const auto& pa : a) {
      if (dominates(pa, pb) || pa == pb) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

double spread(const std::vector<EUPoint>& front) {
  std::vector<EUPoint> clean = pareto_front(front);
  if (clean.size() < 2) return 0.0;

  // Normalize both axes to [0,1] so the Euclidean gaps are comparable.
  const double e_lo = clean.front().energy;
  const double e_hi = clean.back().energy;
  const double u_lo = clean.front().utility;
  const double u_hi = clean.back().utility;
  const double e_span = e_hi > e_lo ? e_hi - e_lo : 1.0;
  const double u_span = u_hi > u_lo ? u_hi - u_lo : 1.0;

  std::vector<double> gaps;
  gaps.reserve(clean.size() - 1);
  for (std::size_t i = 1; i < clean.size(); ++i) {
    const double de = (clean[i].energy - clean[i - 1].energy) / e_span;
    const double du = (clean[i].utility - clean[i - 1].utility) / u_span;
    gaps.push_back(std::hypot(de, du));
  }
  double mean = 0.0;
  for (const double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  if (mean <= 0.0) return 0.0;

  double deviation = 0.0;
  for (const double g : gaps) deviation += std::abs(g - mean);
  return deviation / (static_cast<double>(gaps.size()) * mean);
}

double epsilon_indicator(const std::vector<EUPoint>& a,
                         const std::vector<EUPoint>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("epsilon indicator needs non-empty sets");
  }
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& pb : b) {
    // Smallest shift that makes some member of A weakly dominate pb.
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pa : a) {
      const double need =
          std::max(pa.energy - pb.energy, pb.utility - pa.utility);
      best = std::min(best, need);
    }
    worst = std::max(worst, best);
  }
  return worst;
}

double generational_distance(const std::vector<EUPoint>& front,
                             const std::vector<EUPoint>& reference) {
  if (front.empty() || reference.empty()) {
    throw std::invalid_argument("generational distance needs non-empty sets");
  }
  double total = 0.0;
  for (const auto& p : front) {
    double nearest = std::numeric_limits<double>::infinity();
    for (const auto& r : reference) {
      nearest = std::min(
          nearest, std::hypot(p.energy - r.energy, p.utility - r.utility));
    }
    total += nearest;
  }
  return total / static_cast<double>(front.size());
}

double inverted_generational_distance(const std::vector<EUPoint>& front,
                                      const std::vector<EUPoint>& reference) {
  return generational_distance(reference, front);
}

EUPoint enclosing_reference(const std::vector<std::vector<EUPoint>>& sets,
                            double margin) {
  double e_max = -std::numeric_limits<double>::infinity();
  double u_min = std::numeric_limits<double>::infinity();
  double e_min = std::numeric_limits<double>::infinity();
  double u_max = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& set : sets) {
    for (const auto& p : set) {
      e_max = std::max(e_max, p.energy);
      e_min = std::min(e_min, p.energy);
      u_min = std::min(u_min, p.utility);
      u_max = std::max(u_max, p.utility);
      any = true;
    }
  }
  if (!any) return {1.0, 0.0};
  const double e_pad = margin * std::max(e_max - e_min, 1e-12);
  const double u_pad = margin * std::max(u_max - u_min, 1e-12);
  return {e_max + e_pad, u_min - u_pad};
}

}  // namespace eus
