#include "pareto/archive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace eus {

bool ParetoArchive::insert(const EUPoint& p, std::size_t tag,
                           std::uint64_t fingerprint) {
  // Duplicate genome (same nonzero fingerprint) — never double-insert, even
  // if the submitted point differs (a genome re-evaluated elsewhere).
  if (fingerprint != 0) {
    for (const auto& e : entries_) {
      if (e.fingerprint == fingerprint) return false;
    }
  }

  // Reject if dominated by or equal to any member.  Members are sorted by
  // energy; only members with energy <= p.energy can dominate it.
  for (const auto& e : entries_) {
    if (e.point.energy > p.energy) break;
    if (dominates(e.point, p) || e.point == p) return false;
  }

  // Evict members p dominates (they have energy >= p.energy).
  std::erase_if(entries_, [&](const Entry& e) { return dominates(p, e.point); });

  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), p, [](const Entry& e, const EUPoint& q) {
        return e.point.energy < q.energy;
      });
  entries_.insert(at, Entry{p, tag, fingerprint});

  if (capacity_ > 0 && entries_.size() > capacity_) prune();
  return true;
}

std::size_t ParetoArchive::insert_all(const std::vector<EUPoint>& points,
                                      std::size_t tag) {
  std::size_t added = 0;
  for (const auto& p : points) {
    if (insert(p, tag)) ++added;
  }
  return added;
}

std::vector<EUPoint> ParetoArchive::points() const {
  std::vector<EUPoint> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.point);
  return out;
}

bool ParetoArchive::covers(const EUPoint& p) const {
  for (const auto& e : entries_) {
    if (e.point.energy > p.energy) break;
    if (dominates(e.point, p) || e.point == p) return true;
  }
  return false;
}

void ParetoArchive::prune() {
  // Drop the interior member with the smallest crowding credit (sum of the
  // normalized gaps to its neighbours along the energy-sorted front).
  // Exact-tie policy (load-bearing for reproducible warm-start archives):
  // the strict `<` below keeps the first minimum found, so among members
  // with bit-equal credits the lowest-energy one is evicted.  Entries are
  // kept energy-sorted, making the victim independent of insertion order.
  const std::size_t n = entries_.size();
  const double e_span =
      std::max(entries_.back().point.energy - entries_.front().point.energy,
               1e-300);
  const double u_span =
      std::max(entries_.back().point.utility - entries_.front().point.utility,
               1e-300);

  std::size_t victim = 0;
  double smallest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double credit =
        (entries_[i + 1].point.energy - entries_[i - 1].point.energy) /
            e_span +
        (entries_[i + 1].point.utility - entries_[i - 1].point.utility) /
            u_span;
    if (credit < smallest) {
      smallest = credit;
      victim = i;
    }
  }
  if (victim != 0) {
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  } else if (!entries_.empty()) {
    // n <= 2 with capacity 1: keep the higher-utility extreme.
    entries_.erase(entries_.begin());
  }
}

}  // namespace eus
