#include "pareto/front.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace eus {

std::vector<std::size_t> nondominated_indices(
    const std::vector<EUPoint>& points) {
  // Sweep in ascending energy (ties: descending utility).  A point is
  // nondominated iff its utility strictly exceeds every smaller-energy
  // point's utility — except exact duplicates, which are kept.
  std::vector<std::size_t> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0U);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (front_order_less(points[a], points[b])) return true;
    if (front_order_less(points[b], points[a])) return false;
    return a < b;
  });

  std::vector<std::size_t> front;
  double best_utility = -std::numeric_limits<double>::infinity();
  EUPoint last_kept{std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::quiet_NaN()};
  for (const std::size_t i : idx) {
    const EUPoint& p = points[i];
    if (p.utility > best_utility) {
      front.push_back(i);
      best_utility = p.utility;
      last_kept = p;
    } else if (p.energy == last_kept.energy &&
               p.utility == last_kept.utility) {
      front.push_back(i);  // duplicate of a nondominated point
    }
  }
  return front;
}

std::vector<EUPoint> pareto_front(const std::vector<EUPoint>& points) {
  std::vector<EUPoint> out;
  for (const std::size_t i : nondominated_indices(points)) {
    out.push_back(points[i]);
  }
  return out;
}

bool is_mutually_nondominated(const std::vector<EUPoint>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j && dominates(points[i], points[j])) return false;
    }
  }
  return true;
}

}  // namespace eus
