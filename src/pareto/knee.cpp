#include "pareto/knee.hpp"

#include <cmath>
#include <stdexcept>

#include "pareto/front.hpp"

namespace eus {

KneeAnalysis analyze_utility_per_energy(const std::vector<EUPoint>& points,
                                        double region_tolerance) {
  KneeAnalysis out;
  out.front = pareto_front(points);
  if (out.front.empty()) return out;

  out.ratio.reserve(out.front.size());
  for (const auto& p : out.front) {
    if (!(p.energy > 0.0)) {
      throw std::invalid_argument("utility-per-energy needs positive energy");
    }
    out.ratio.push_back(p.utility / p.energy);
  }

  for (std::size_t i = 1; i < out.ratio.size(); ++i) {
    if (out.ratio[i] > out.ratio[out.peak_index]) out.peak_index = i;
  }
  out.peak = out.front[out.peak_index];
  out.peak_ratio = out.ratio[out.peak_index];

  const double floor = out.peak_ratio * (1.0 - region_tolerance);
  for (std::size_t i = 0; i < out.ratio.size(); ++i) {
    if (out.ratio[i] >= floor) out.region.push_back(i);
  }
  return out;
}

std::size_t chord_knee_index(const std::vector<EUPoint>& points) {
  const std::vector<EUPoint> front = pareto_front(points);
  if (front.size() < 3) return 0;

  const EUPoint& lo = front.front();
  const EUPoint& hi = front.back();
  const double e_span = std::max(hi.energy - lo.energy, 1e-300);
  const double u_span = std::max(hi.utility - lo.utility, 1e-300);

  // Normalized chord from (0,0) to (1,1); distance of each normalized
  // front point above it.
  std::size_t best = 0;
  double best_distance = -1.0;
  for (std::size_t i = 0; i < front.size(); ++i) {
    const double x = (front[i].energy - lo.energy) / e_span;
    const double y = (front[i].utility - lo.utility) / u_span;
    const double distance = (y - x) / std::sqrt(2.0);
    if (distance > best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

}  // namespace eus
