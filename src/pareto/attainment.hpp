#pragma once

// Empirical attainment: summarize K repeated runs' Pareto fronts by the
// region of objective space that at least k of them reached.  The
// k%-attainment front generalizes "best run" (k = 1) and "every run"
// (k = K) and is the standard way to report stochastic multi-objective
// solvers beyond a single-seed anecdote.

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

/// The k-of-K attainment front of `fronts` (each front any point set; they
/// are cleaned internally).  A point is *attained* by a run when some
/// member of that run's front weakly dominates it.  The result is the
/// nondominated staircase of points attained by at least `k` runs —
/// ascending in energy, like every front in the library.
///
/// Throws std::invalid_argument when `fronts` is empty, any front is
/// empty, or k is outside [1, fronts.size()].
[[nodiscard]] std::vector<EUPoint> attainment_front(
    const std::vector<std::vector<EUPoint>>& fronts, std::size_t k);

/// How many of the runs attain point `p` (weak dominance).
[[nodiscard]] std::size_t attainment_count(
    const std::vector<std::vector<EUPoint>>& fronts, const EUPoint& p);

}  // namespace eus
