#pragma once

// The framework's objective space (Figure 2): energy on the x-axis
// (minimize), utility on the y-axis (maximize).  "Good" lives in the upper
// left.  Problems with other semantics (e.g. the makespan-energy baseline)
// map their second objective into `utility` as a to-be-maximized value.

namespace eus {

struct EUPoint {
  double energy = 0.0;   ///< minimize
  double utility = 0.0;  ///< maximize

  friend bool operator==(const EUPoint&, const EUPoint&) = default;
};

/// Pareto dominance per §IV-C: a dominates b iff a is no worse in both
/// objectives and strictly better in at least one.
[[nodiscard]] constexpr bool dominates(const EUPoint& a,
                                       const EUPoint& b) noexcept {
  const bool no_worse = a.energy <= b.energy && a.utility >= b.utility;
  const bool better = a.energy < b.energy || a.utility > b.utility;
  return no_worse && better;
}

/// Neither dominates the other (both may also be equal).
[[nodiscard]] constexpr bool incomparable(const EUPoint& a,
                                          const EUPoint& b) noexcept {
  return !dominates(a, b) && !dominates(b, a);
}

}  // namespace eus
