#pragma once

// Online (dynamic) mapping policies.  The paper's framework is explicitly
// offline/post-mortem, but its stated purpose is to parameterize *online*
// heuristics: "These energy constraints could then be used in conjunction
// with a separate online dynamic utility maximization heuristic" (§VI).
// This module provides that other half: policies that see tasks only as
// they arrive — no future knowledge — and an event simulator to drive them.

#include <string>

#include "data/system.hpp"
#include "tuf/time_utility_function.hpp"
#include "workload/trace.hpp"

namespace eus {

/// Everything a policy may inspect at decision time.  All state refers to
/// "now" (the arriving task's arrival instant); nothing about future
/// arrivals is visible.
struct OnlineContext {
  const SystemModel* system = nullptr;
  double now = 0.0;
  /// When each machine instance's queue drains (>= now means busy).
  const std::vector<double>* machine_available = nullptr;
  double energy_spent = 0.0;
  /// Total-energy cap for the run; <= 0 means unconstrained.
  double energy_budget = 0.0;
  /// Tasks seen so far including the current one / expected total (the
  /// administrator knows the historical arrival rate).
  std::size_t tasks_seen = 0;
  std::size_t tasks_expected = 0;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses the machine instance for the arriving task, or -1 to decline
  /// it (only honored when the simulator allows dropping).  Must pick from
  /// system->eligible_machines(task.type).
  [[nodiscard]] virtual int place(const OnlineContext& ctx,
                                  const TaskInstance& task,
                                  const TimeUtilityFunction& tuf) = 0;
};

/// Greedy minimum-EEC placement — the online twin of §V-B1.
class OnlineMinEnergy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "online-min-energy"; }
  [[nodiscard]] int place(const OnlineContext& ctx, const TaskInstance& task,
                          const TimeUtilityFunction& tuf) override;
};

/// Greedy maximum-utility placement — the online twin of §V-B2.
class OnlineMaxUtility final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "online-max-utility"; }
  [[nodiscard]] int place(const OnlineContext& ctx, const TaskInstance& task,
                          const TimeUtilityFunction& tuf) override;
};

/// Greedy maximum utility-per-joule — the online twin of §V-B3.
class OnlineMaxUtilityPerEnergy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "online-max-utility-per-energy";
  }
  [[nodiscard]] int place(const OnlineContext& ctx, const TaskInstance& task,
                          const TimeUtilityFunction& tuf) override;
};

/// Minimum completion time (MCT, Maheswaran et al. 1999): the classic
/// dynamic-mapping baseline.
class OnlineMinCompletionTime final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "online-mct"; }
  [[nodiscard]] int place(const OnlineContext& ctx, const TaskInstance& task,
                          const TimeUtilityFunction& tuf) override;
};

/// The paper's intended composite: maximize utility while pacing energy
/// against a budget derived from the offline Pareto analysis.  While the
/// run is under its pro-rata energy pace it behaves like max-utility; once
/// ahead of pace it behaves like max-utility-per-energy; when a placement
/// would overshoot the whole budget it falls back to min-energy.
class BudgetPacedUtility final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "budget-paced-utility";
  }
  [[nodiscard]] int place(const OnlineContext& ctx, const TaskInstance& task,
                          const TimeUtilityFunction& tuf) override;
};

}  // namespace eus
