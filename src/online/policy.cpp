#include "online/policy.hpp"

#include <algorithm>
#include <limits>

namespace eus {
namespace {

struct Choice {
  int machine = -1;
  double finish = 0.0;
  double utility = 0.0;
  double energy = 0.0;
};

enum class TieBreak { kEnergyThenFinish, kFinishThenEnergy };

/// Evaluates every eligible machine for the arriving task and returns the
/// one maximizing `score`, breaking score ties per `tie`.
template <typename Score>
Choice pick(const OnlineContext& ctx, const TaskInstance& task,
            const TimeUtilityFunction& tuf, Score&& score,
            TieBreak tie = TieBreak::kEnergyThenFinish) {
  const SystemModel& system = *ctx.system;
  Choice best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const int m : system.eligible_machines(task.type)) {
    const auto mi = static_cast<std::size_t>(m);
    const double start =
        std::max((*ctx.machine_available)[mi], task.arrival);
    Choice c;
    c.machine = m;
    c.finish = start + system.etc_on(task.type, mi);
    c.utility = tuf.value(c.finish - task.arrival);
    c.energy = system.eec_on(task.type, mi);
    const double s = score(c);
    bool take = best.machine < 0;
    if (!take && s > best_score) take = true;
    if (!take && s == best_score) {
      if (tie == TieBreak::kEnergyThenFinish) {
        take = c.energy < best.energy ||
               (c.energy == best.energy && c.finish < best.finish);
      } else {
        take = c.finish < best.finish ||
               (c.finish == best.finish && c.energy < best.energy);
      }
    }
    if (take) {
      best = c;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

int OnlineMinEnergy::place(const OnlineContext& ctx, const TaskInstance& task,
                           const TimeUtilityFunction& tuf) {
  return pick(ctx, task, tuf, [](const Choice& c) { return -c.energy; })
      .machine;
}

int OnlineMaxUtility::place(const OnlineContext& ctx,
                            const TaskInstance& task,
                            const TimeUtilityFunction& tuf) {
  // Tie-break on earlier finish, mirroring §V-B2's offline heuristic
  // (so this policy reproduces max_utility_allocation exactly).
  return pick(ctx, task, tuf, [](const Choice& c) { return c.utility; },
              TieBreak::kFinishThenEnergy)
      .machine;
}

int OnlineMaxUtilityPerEnergy::place(const OnlineContext& ctx,
                                     const TaskInstance& task,
                                     const TimeUtilityFunction& tuf) {
  return pick(ctx, task, tuf,
              [](const Choice& c) { return c.utility / c.energy; })
      .machine;
}

int OnlineMinCompletionTime::place(const OnlineContext& ctx,
                                   const TaskInstance& task,
                                   const TimeUtilityFunction& tuf) {
  return pick(ctx, task, tuf, [](const Choice& c) { return -c.finish; })
      .machine;
}

int BudgetPacedUtility::place(const OnlineContext& ctx,
                              const TaskInstance& task,
                              const TimeUtilityFunction& tuf) {
  if (ctx.energy_budget <= 0.0) {
    // No budget: plain utility maximization (identical to OnlineMaxUtility).
    return pick(ctx, task, tuf, [](const Choice& c) { return c.utility; },
                TieBreak::kFinishThenEnergy)
        .machine;
  }
  const double remaining = ctx.energy_budget - ctx.energy_spent;

  // Pro-rata pace: by the k-th of K expected tasks we intend to have spent
  // k/K of the budget.
  const double expected =
      ctx.tasks_expected > 0
          ? ctx.energy_budget * static_cast<double>(ctx.tasks_seen) /
                static_cast<double>(ctx.tasks_expected)
          : ctx.energy_budget;

  const Choice greedy =
      pick(ctx, task, tuf, [](const Choice& c) { return c.utility; });
  if (ctx.energy_spent + greedy.energy <= expected) return greedy.machine;

  const Choice efficient = pick(
      ctx, task, tuf, [](const Choice& c) { return c.utility / c.energy; });
  if (efficient.energy <= remaining) return efficient.machine;

  // Last resort: the cheapest machine (may still overrun; the simulator
  // decides whether to drop instead).
  return pick(ctx, task, tuf, [](const Choice& c) { return -c.energy; })
      .machine;
}

}  // namespace eus
