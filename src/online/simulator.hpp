#pragma once

// The online (dynamic) scheduling simulator: replays a trace in arrival
// order, consulting an OnlinePolicy at each arrival with no knowledge of
// the future, and accounting utility/energy exactly like the offline
// evaluator.  An online run is therefore directly comparable to — and can
// be converted into — an offline Allocation (machines as chosen, global
// scheduling order == arrival order).

#include <vector>

#include "online/policy.hpp"
#include "sched/evaluator.hpp"

namespace eus {

struct OnlineOptions {
  /// Total-energy cap; <= 0 disables budgeting.  When a placement would
  /// exceed the cap the simulator retries the cheapest eligible machine,
  /// then drops the task if dropping is allowed (else places it and
  /// records the overrun).
  double energy_budget = 0.0;
  bool allow_dropping = false;
};

struct OnlineResult {
  double utility = 0.0;
  double energy = 0.0;
  double makespan = 0.0;
  std::size_t dropped = 0;
  bool budget_overrun = false;
  std::vector<TaskOutcome> outcomes;  ///< indexed by trace task
  /// The run re-expressed as an offline allocation (dropped tasks mapped
  /// to their cheapest machine for shape; see `dropped` flags).
  Allocation allocation;
};

/// Runs `policy` over the trace.  Throws std::invalid_argument if the
/// policy returns an ineligible machine, or -1 while dropping is disabled.
[[nodiscard]] OnlineResult simulate_online(const SystemModel& system,
                                           const Trace& trace,
                                           OnlinePolicy& policy,
                                           const OnlineOptions& options = {});

}  // namespace eus
