#include "online/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace eus {
namespace {

int cheapest_machine(const SystemModel& system, std::size_t type) {
  int best = -1;
  double best_eec = std::numeric_limits<double>::infinity();
  for (const int m : system.eligible_machines(type)) {
    const double eec = system.eec_on(type, static_cast<std::size_t>(m));
    if (eec < best_eec) {
      best_eec = eec;
      best = m;
    }
  }
  return best;
}

}  // namespace

OnlineResult simulate_online(const SystemModel& system, const Trace& trace,
                             OnlinePolicy& policy,
                             const OnlineOptions& options) {
  trace.validate_against(system);

  OnlineResult result;
  result.outcomes.resize(trace.size());
  result.allocation.machine.assign(trace.size(), 0);
  result.allocation.order.resize(trace.size());

  std::vector<double> available(system.num_machines(), 0.0);

  OnlineContext ctx;
  ctx.system = &system;
  ctx.machine_available = &available;
  ctx.energy_budget = options.energy_budget;
  ctx.tasks_expected = trace.size();

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TaskInstance& task = trace.tasks()[i];
    const TimeUtilityFunction& tuf = trace.tuf_of(i);
    ctx.now = task.arrival;
    ctx.energy_spent = result.energy;
    ctx.tasks_seen = i + 1;
    result.allocation.order[i] = static_cast<int>(i);  // arrival order

    int machine = policy.place(ctx, task, tuf);
    if (machine >= 0 &&
        !system.eligible(task.type, static_cast<std::size_t>(machine))) {
      throw std::invalid_argument("policy chose an ineligible machine");
    }

    bool drop = false;
    if (machine < 0) {
      if (!options.allow_dropping) {
        throw std::invalid_argument(
            "policy declined a task but dropping is disabled");
      }
      drop = true;
      machine = cheapest_machine(system, task.type);
    } else if (options.energy_budget > 0.0) {
      const double eec =
          system.eec_on(task.type, static_cast<std::size_t>(machine));
      if (result.energy + eec > options.energy_budget) {
        // Retry the cheapest machine before giving up on the task.
        const int cheap = cheapest_machine(system, task.type);
        const double cheap_eec =
            system.eec_on(task.type, static_cast<std::size_t>(cheap));
        if (result.energy + cheap_eec <= options.energy_budget) {
          machine = cheap;
        } else if (options.allow_dropping) {
          drop = true;
          machine = cheap;
        } else {
          machine = cheap;
          result.budget_overrun = true;
        }
      }
    }

    result.allocation.machine[i] = machine;
    if (drop) {
      ++result.dropped;
      result.outcomes[i] = TaskOutcome{machine, 0.0, 0.0, 0.0, 0.0, true};
      continue;
    }

    const auto mi = static_cast<std::size_t>(machine);
    const double start = std::max(available[mi], task.arrival);
    const double exec = system.etc_on(task.type, mi);
    const double finish = start + exec;
    available[mi] = finish;

    const double utility = tuf.value(finish - task.arrival);
    const double energy = system.eec_on(task.type, mi);
    result.utility += utility;
    result.energy += energy;
    result.makespan = std::max(result.makespan, finish);
    result.outcomes[i] =
        TaskOutcome{machine, start, finish, utility, energy, false};
  }
  return result;
}

}  // namespace eus
