#include "core/nsga2.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/crowding.hpp"
#include "core/nondominated_sort.hpp"
#include "core/operators.hpp"
#include "pareto/front.hpp"

namespace eus {

std::size_t crowded_tournament_winner(
    const std::vector<Individual>& population, std::size_t a, std::size_t b,
    Rng& rng) {
  const Individual& ia = population[a];
  const Individual& ib = population[b];
  if (ia.rank != ib.rank) return ia.rank < ib.rank ? a : b;
  if (ia.crowding != ib.crowding) return ia.crowding > ib.crowding ? a : b;
  return rng.below(2) == 0 ? a : b;
}

Nsga2::Nsga2(const BiObjectiveProblem& problem, Nsga2Config config)
    : problem_(&problem), config_(config), rng_(config.seed) {
  if (config_.population_size < 2 || config_.population_size % 2 != 0) {
    throw std::invalid_argument("population size must be even and >= 2");
  }
  if (config_.mutation_probability < 0.0 ||
      config_.mutation_probability > 1.0) {
    throw std::invalid_argument("mutation probability must be in [0,1]");
  }
  if (config_.shared_pool != nullptr) {
    eval_pool_ = config_.shared_pool;
  } else if (config_.threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    eval_pool_ = owned_pool_.get();
  }
  if (config_.metrics != nullptr) {
    MetricsRegistry& m = *config_.metrics;
    metric_evaluations_ = &m.counter("nsga2.evaluations");
    metric_generations_ = &m.counter("nsga2.generations");
    metric_front_size_ = &m.gauge("nsga2.front_size");
    timer_variation_ = &m.timer("nsga2.variation_s");
    timer_evaluation_ = &m.timer("nsga2.evaluation_s");
    timer_selection_ = &m.timer("nsga2.selection_s");
  }
}

Nsga2::~Nsga2() = default;

void Nsga2::evaluate_all(std::vector<Individual>& individuals,
                         std::size_t begin) {
  const ScopedTimer timed(timer_evaluation_);
  const std::size_t count = individuals.size() - begin;
  const auto eval_one = [&](std::size_t k) {
    Individual& ind = individuals[begin + k];
    ind.objectives = config_.cache != nullptr
                         ? config_.cache->evaluate(*problem_, ind.genome)
                         : problem_->evaluate(ind.genome);
  };
  if (eval_pool_ != nullptr) {
    eval_pool_->parallel_for(count, eval_one);
  } else {
    for (std::size_t k = 0; k < count; ++k) eval_one(k);
  }
  evaluations_ += count;
  if (metric_evaluations_ != nullptr) metric_evaluations_->add(count);
}

void Nsga2::initialize(const std::vector<Allocation>& seeds) {
  if (initialized_) throw std::logic_error("already initialized");
  if (seeds.size() > config_.population_size) {
    throw std::invalid_argument("more seeds than population slots");
  }
  const std::size_t genome = problem_->genome_size();

  population_.clear();
  population_.reserve(config_.population_size);
  for (const Allocation& seed : seeds) {
    if (seed.size() != genome ||
        seed.order.size() != genome) {
      throw std::invalid_argument("seed genome size mismatch");
    }
    population_.push_back({seed, {}, 0, 0.0});
  }
  while (population_.size() < config_.population_size) {
    population_.push_back({random_allocation(*problem_, rng_), {}, 0, 0.0});
  }

  evaluate_all(population_, 0);

  // Annotate the initial population so front() is meaningful pre-iterate.
  annotate_and_select(population_);
  initialized_ = true;
}

void Nsga2::annotate_and_select(std::vector<Individual>& meta) {
  const std::size_t n = config_.population_size;

  std::vector<EUPoint> points;
  points.reserve(meta.size());
  for (const auto& ind : meta) points.push_back(ind.objectives);
  const SortedFronts sorted = nondominated_sort(points);

  std::vector<Individual> next;
  next.reserve(std::min(n, meta.size()));
  for (const auto& front : sorted.fronts) {
    const std::vector<double> crowd = crowding_distances(points, front);

    if (next.size() + front.size() <= n || meta.size() <= n) {
      // Whole rank fits (or we are just annotating an N-sized population).
      for (std::size_t k = 0; k < front.size(); ++k) {
        Individual ind = std::move(meta[front[k]]);
        ind.rank = sorted.rank[front[k]];
        ind.crowding = crowd[k];
        next.push_back(std::move(ind));
        if (next.size() == n && meta.size() <= n) break;
      }
      if (next.size() == n) break;
      continue;
    }

    // Cut rank: truncate by descending crowding distance (Algorithm 1
    // step 10), or by ascending energy when crowding is ablated away.
    std::vector<std::size_t> keep(front.size());
    std::iota(keep.begin(), keep.end(), 0U);
    if (config_.use_crowding) {
      std::sort(keep.begin(), keep.end(), [&](std::size_t a, std::size_t b) {
        if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
        return front[a] < front[b];
      });
    }
    const std::size_t need = n - next.size();
    keep.resize(need);
    for (const std::size_t k : keep) {
      Individual ind = std::move(meta[front[k]]);
      ind.rank = sorted.rank[front[k]];
      ind.crowding = crowd[k];
      next.push_back(std::move(ind));
    }
    break;
  }
  meta = std::move(next);
}

void Nsga2::iterate(std::size_t generations) {
  if (!initialized_) throw std::logic_error("initialize() first");
  const std::size_t n = config_.population_size;

  for (std::size_t g = 0; g < generations; ++g) {
    // Step 3-5: offspring via N/2 uniform-pair crossovers + mutation.
    std::vector<Individual> meta;
    meta.reserve(2 * n);
    for (auto& ind : population_) meta.push_back(std::move(ind));

    // Parent pick: uniform (the paper) or crowded binary tournament (Deb).
    const auto select_parent = [&]() -> std::size_t {
      if (config_.selection == SelectionMode::kUniform) return rng_.below(n);
      const std::size_t a = rng_.below(n);
      const std::size_t b = rng_.below(n);
      return crowded_tournament_winner(meta, a, b, rng_);
    };

    {
      const ScopedTimer timed(timer_variation_);
      for (std::size_t pair = 0; pair < n / 2; ++pair) {
        const std::size_t i = select_parent();
        std::size_t j = select_parent();
        while (n > 1 && j == i) j = select_parent();

        Allocation child_a = meta[i].genome;
        Allocation child_b = meta[j].genome;
        crossover(child_a, child_b, rng_);
        if (rng_.chance(config_.mutation_probability)) {
          mutate(child_a, *problem_, rng_);
        }
        if (rng_.chance(config_.mutation_probability)) {
          mutate(child_b, *problem_, rng_);
        }
        if (config_.repair_order_permutation) {
          repair_order_permutation(child_a);
          repair_order_permutation(child_b);
        }
        meta.push_back({std::move(child_a), {}, 0, 0.0});
        meta.push_back({std::move(child_b), {}, 0, 0.0});
      }
    }

    // Only the fresh offspring need evaluating (parents carry theirs).
    evaluate_all(meta, n);

    // Steps 6-11: elitist environmental selection.
    {
      const ScopedTimer timed(timer_selection_);
      annotate_and_select(meta);
    }
    population_ = std::move(meta);
    ++generation_;
    if (metric_generations_ != nullptr) {
      metric_generations_->add(1);
      std::size_t front_size = 0;
      for (const auto& ind : population_) {
        if (ind.rank == 0) ++front_size;
      }
      metric_front_size_->set(static_cast<double>(front_size));
    }
    if (observer_) observer_(generation_, population_);
  }
}

std::vector<Individual> Nsga2::front() const {
  std::vector<Individual> out;
  for (const auto& ind : population_) {
    if (ind.rank == 0) out.push_back(ind);
  }
  // Canonical presentation order: ascending energy, descending utility on
  // ties — the same sweep order pareto/front.cpp uses, so checkpoint front
  // dumps are ordered identically everywhere.
  std::sort(out.begin(), out.end(),
            [](const Individual& a, const Individual& b) {
              return front_order_less(a.objectives, b.objectives);
            });
  return out;
}

std::vector<EUPoint> Nsga2::front_points() const {
  std::vector<EUPoint> out;
  for (const auto& ind : front()) out.push_back(ind.objectives);
  return out;
}

}  // namespace eus
