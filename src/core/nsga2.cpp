#include "core/nsga2.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/crowding.hpp"
#include "core/nondominated_sort.hpp"
#include "core/operators.hpp"
#include "pareto/front.hpp"

namespace eus {

std::size_t crowded_tournament_winner(
    const std::vector<Individual>& population, std::size_t a, std::size_t b,
    Rng& rng) {
  const Individual& ia = population[a];
  const Individual& ib = population[b];
  if (ia.rank != ib.rank) return ia.rank < ib.rank ? a : b;
  if (ia.crowding != ib.crowding) return ia.crowding > ib.crowding ? a : b;
  return rng.below(2) == 0 ? a : b;
}

Nsga2::Nsga2(const BiObjectiveProblem& problem, Nsga2Config config)
    : problem_(&problem), config_(config), rng_(config.seed) {
  if (config_.population_size < 2 || config_.population_size % 2 != 0) {
    throw std::invalid_argument("population size must be even and >= 2");
  }
  if (config_.mutation_probability < 0.0 ||
      config_.mutation_probability > 1.0) {
    throw std::invalid_argument("mutation probability must be in [0,1]");
  }
  if (config_.shared_pool != nullptr) {
    eval_pool_ = config_.shared_pool;
  } else if (config_.threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    eval_pool_ = owned_pool_.get();
  }
  if (config_.metrics != nullptr) {
    MetricsRegistry& m = *config_.metrics;
    metric_evaluations_ = &m.counter("nsga2.evaluations");
    metric_generations_ = &m.counter("nsga2.generations");
    metric_front_size_ = &m.gauge("nsga2.front_size");
    timer_variation_ = &m.timer("nsga2.variation_s");
    timer_evaluation_ = &m.timer("nsga2.evaluation_s");
    timer_selection_ = &m.timer("nsga2.selection_s");
  }
}

Nsga2::~Nsga2() = default;

void Nsga2::evaluate_individual(std::vector<Individual>& individuals,
                                std::size_t idx, const OffspringHint* hint,
                                bool trusted_genome) {
  Individual& ind = individuals[idx];
  const Evaluator* ev = problem_->incremental_evaluator();
  const bool use_delta = ev != nullptr && ev->incremental_on();
  // Cheapest winning path: fitness-cache hit (no simulation at all, but
  // also no EvalState) > clone of the parent (reuse its objectives and
  // partials) > delta re-simulation of the dirty machines > full
  // simulation.  All four produce bit-identical objectives.
  const auto compute = [&](const Allocation& genome) -> EUPoint {
    if (use_delta) {
      if (hint != nullptr && !hint->full) {
        // Operator-built child of a validated parent: structurally
        // valid, so the evaluator may skip per-gene validation.
        const Individual& parent = individuals[hint->parent];
        if (parent.state.valid()) {
          if (hint->touched.empty()) {
            ind.state = parent.state;
            return parent.objectives;
          }
          return problem_->objectives_of(ev->evaluate_incremental(
              genome, parent.genome, parent.state, hint->touched,
              ind.state, /*trusted_child=*/true));
        }
        return problem_->objectives_of(
            ev->evaluate_trusted(genome, ind.state));
      }
      return problem_->objectives_of(
          trusted_genome ? ev->evaluate_trusted(genome, ind.state)
                         : ev->evaluate(genome, ind.state));
    }
    return problem_->evaluate(genome);
  };
  ind.objectives = config_.cache != nullptr
                       ? config_.cache->evaluate_through(ind.genome, compute)
                       : compute(ind.genome);
}

void Nsga2::evaluate_all(std::vector<Individual>& individuals,
                         std::size_t begin,
                         const std::vector<OffspringHint>* hints,
                         bool trusted_genomes) {
  const ScopedTimer timed(timer_evaluation_);
  const std::size_t count = individuals.size() - begin;
  const auto eval_one = [&](std::size_t k) {
    evaluate_individual(individuals, begin + k,
                        hints != nullptr ? &(*hints)[k] : nullptr,
                        trusted_genomes);
  };
  if (eval_pool_ != nullptr) {
    eval_pool_->parallel_for(count, eval_one);
  } else {
    for (std::size_t k = 0; k < count; ++k) eval_one(k);
  }
  evaluations_ += count;
  if (metric_evaluations_ != nullptr) metric_evaluations_->add(count);
}

bool Nsga2::inline_evaluation() const noexcept {
  // With no pool (or a single-worker pool, which runs parallel_for inline)
  // evaluation is serial either way, so each fresh genome can be evaluated
  // the moment it is built — while it is still cache-hot from construction.
  // A population of genomes built first and evaluated afterwards has long
  // been evicted by the time the evaluator reads it back.  Evaluation is a
  // pure function and draws no random numbers, so interleaving changes no
  // result bits.
  return eval_pool_ == nullptr || eval_pool_->size() == 1;
}

void Nsga2::initialize(const std::vector<Allocation>& seeds) {
  if (initialized_) throw std::logic_error("already initialized");
  if (seeds.size() > config_.population_size) {
    throw std::invalid_argument("more seeds than population slots");
  }
  const std::size_t genome = problem_->genome_size();

  population_.clear();
  population_.reserve(config_.population_size);
  const Evaluator* ev = problem_->incremental_evaluator();
  const bool interleave = inline_evaluation();
  const auto eval_fresh = [&]() {
    if (!interleave) return;
    const ScopedTimer timed(timer_evaluation_);
    evaluate_individual(population_, population_.size() - 1, nullptr,
                        /*trusted_genome=*/true);
  };
  for (const Allocation& seed : seeds) {
    if (seed.size() != genome ||
        seed.order.size() != genome) {
      throw std::invalid_argument("seed genome size mismatch");
    }
    // User-supplied genomes get their one structural validation here;
    // random fills below are valid by construction (drawn from eligible
    // machines and in-range p-states), so the initial evaluation sweep
    // can skip the per-gene pass for the whole population.
    if (ev != nullptr) ev->validate(seed);
    population_.push_back({seed, {}, 0, 0.0});
    eval_fresh();
  }
  while (population_.size() < config_.population_size) {
    population_.push_back({random_allocation(*problem_, rng_), {}, 0, 0.0});
    eval_fresh();
  }

  if (interleave) {
    evaluations_ += population_.size();
    if (metric_evaluations_ != nullptr) {
      metric_evaluations_->add(population_.size());
    }
  } else {
    evaluate_all(population_, 0, nullptr, /*trusted_genomes=*/true);
  }

  // Annotate the initial population so front() is meaningful pre-iterate.
  annotate_and_select(population_);
  initialized_ = true;
}

void Nsga2::initialize_warm(const std::vector<Allocation>& seeds,
                            const std::vector<Allocation>& warm) {
  if (seeds.size() > config_.population_size) {
    throw std::invalid_argument("more seeds than population slots");
  }
  std::vector<Allocation> combined = seeds;
  const std::size_t room = config_.population_size - seeds.size();
  const std::size_t injected = std::min(room, warm.size());
  combined.insert(combined.end(), warm.begin(),
                  warm.begin() + static_cast<std::ptrdiff_t>(injected));
  if (injected > 0 && config_.metrics != nullptr) {
    config_.metrics->counter("nsga2.warm_seeds").add(injected);
  }
  initialize(combined);
}

void Nsga2::annotate_and_select(std::vector<Individual>& meta) {
  const std::size_t n = config_.population_size;

  std::vector<EUPoint> points;
  points.reserve(meta.size());
  for (const auto& ind : meta) points.push_back(ind.objectives);
  const SortedFronts sorted = nondominated_sort(points);

  std::vector<Individual> next;
  next.reserve(std::min(n, meta.size()));
  for (const auto& front : sorted.fronts) {
    const std::vector<double> crowd = crowding_distances(points, front);

    if (next.size() + front.size() <= n || meta.size() <= n) {
      // Whole rank fits (or we are just annotating an N-sized population).
      for (std::size_t k = 0; k < front.size(); ++k) {
        Individual ind = std::move(meta[front[k]]);
        ind.rank = sorted.rank[front[k]];
        ind.crowding = crowd[k];
        next.push_back(std::move(ind));
        if (next.size() == n && meta.size() <= n) break;
      }
      if (next.size() == n) break;
      continue;
    }

    // Cut rank: truncate by descending crowding distance (Algorithm 1
    // step 10), or by ascending energy when crowding is ablated away.
    std::vector<std::size_t> keep(front.size());
    std::iota(keep.begin(), keep.end(), 0U);
    if (config_.use_crowding) {
      std::sort(keep.begin(), keep.end(), [&](std::size_t a, std::size_t b) {
        if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
        return front[a] < front[b];
      });
    }
    const std::size_t need = n - next.size();
    keep.resize(need);
    for (const std::size_t k : keep) {
      Individual ind = std::move(meta[front[k]]);
      ind.rank = sorted.rank[front[k]];
      ind.crowding = crowd[k];
      next.push_back(std::move(ind));
    }
    break;
  }
  meta = std::move(next);
}

void Nsga2::iterate(std::size_t generations) {
  if (!initialized_) throw std::logic_error("initialize() first");
  const std::size_t n = config_.population_size;

  for (std::size_t g = 0; g < generations; ++g) {
    // Step 3-5: offspring via N/2 uniform-pair crossovers + mutation.
    std::vector<Individual> meta;
    meta.reserve(2 * n);
    for (auto& ind : population_) meta.push_back(std::move(ind));

    // Parent pick: uniform (the paper) or crowded binary tournament (Deb).
    const auto select_parent = [&]() -> std::size_t {
      if (config_.selection == SelectionMode::kUniform) return rng_.below(n);
      const std::size_t a = rng_.below(n);
      const std::size_t b = rng_.below(n);
      return crowded_tournament_winner(meta, a, b, rng_);
    };

    // Lineage hints for the delta-evaluator; skipped (full stays true)
    // when the problem has no evaluator or the knob is off.
    const Evaluator* ev = problem_->incremental_evaluator();
    const bool track_deltas = ev != nullptr && ev->incremental_on() &&
                              !config_.repair_order_permutation;
    hints_.resize(n);
    for (OffspringHint& hint : hints_) {
      hint.full = true;
      hint.touched.clear();
    }

    const bool interleave = inline_evaluation();
    {
      thread_local std::vector<std::uint32_t> mutated_a;
      thread_local std::vector<std::uint32_t> mutated_b;
      thread_local std::vector<std::uint32_t> scratch_touched;
      for (std::size_t pair = 0; pair < n / 2; ++pair) {
        {
          const ScopedTimer timed(timer_variation_);
          const std::size_t i = select_parent();
          std::size_t j = select_parent();
          while (n > 1 && j == i) j = select_parent();

          Allocation child_a = meta[i].genome;
          Allocation child_b = meta[j].genome;
          CrossoverSegment segment;
          mutated_a.clear();
          mutated_b.clear();
          crossover(child_a, child_b, rng_, &segment);
          if (rng_.chance(config_.mutation_probability)) {
            mutate(child_a, *problem_, rng_, &mutated_a);
          }
          if (rng_.chance(config_.mutation_probability)) {
            mutate(child_b, *problem_, rng_, &mutated_b);
          }
          if (config_.repair_order_permutation) {
            repair_order_permutation(child_a);
            repair_order_permutation(child_b);
          }
          if (track_deltas) {
            // The true delta vs the parent each child was cloned from:
            // crossover only changes genes where the parents disagreed, so
            // filter the segment (and any mutated genes) down to actual
            // differences before handing them to the delta-evaluator.  A
            // child is also a valid delta off the *other* parent (which
            // donated the segment): its diff there is the segment's
            // complement plus mutations inside the segment.
            //
            // Diffing both parents for every child doubles the genome scans
            // for a marginal payoff, so only the side with the smaller
            // candidate region is scanned up front; the other side is tried
            // only when the first would make the delta-evaluator bail to a
            // full simulation anyway (touched > T/2) — exactly the
            // converged-parents case where the opposite diff can be tiny.
            const auto cloned_side = [&](const Allocation& child,
                                         const Allocation& cloned,
                                         const std::vector<std::uint32_t>&
                                             mutated,
                                         std::vector<std::uint32_t>& out) {
              collect_touched(child, cloned, segment.lo, segment.hi, out);
              for (const std::uint32_t gene : mutated) {
                if (gene >= segment.lo && gene <= segment.hi) {
                  continue;  // already covered by the segment scan
                }
                collect_touched(child, cloned, gene, gene, out);
              }
            };
            const auto donor_side = [&](const Allocation& child,
                                        const Allocation& donor,
                                        const std::vector<std::uint32_t>&
                                            mutated,
                                        std::vector<std::uint32_t>& out) {
              if (segment.lo > 0) {
                collect_touched(child, donor, 0, segment.lo - 1, out);
              }
              if (segment.hi + 1 < child.machine.size()) {
                collect_touched(child, donor, segment.hi + 1,
                                child.machine.size() - 1, out);
              }
              for (const std::uint32_t gene : mutated) {
                if (gene >= segment.lo && gene <= segment.hi) {
                  collect_touched(child, donor, gene, gene, out);
                }
              }
            };
            const auto fill_hint = [&](OffspringHint& hint,
                                       const Allocation& child,
                                       const Allocation& cloned,
                                       std::size_t cloned_index,
                                       const Allocation& donor,
                                       std::size_t donor_index,
                                       const std::vector<std::uint32_t>&
                                           mutated) {
              hint.parent = static_cast<std::uint32_t>(cloned_index);
              hint.full = false;
              if (!segment.swapped) {
                for (const std::uint32_t gene : mutated) {
                  collect_touched(child, cloned, gene, gene, hint.touched);
                }
                return;
              }
              const std::size_t tasks = child.machine.size();
              const std::size_t len = segment.hi - segment.lo + 1;
              const bool cloned_first = len * 2 <= tasks;
              if (cloned_first) {
                cloned_side(child, cloned, mutated, hint.touched);
              } else {
                hint.parent = static_cast<std::uint32_t>(donor_index);
                donor_side(child, donor, mutated, hint.touched);
              }
              if (hint.touched.size() * 2 <= tasks) return;
              scratch_touched.clear();
              if (cloned_first) {
                donor_side(child, donor, mutated, scratch_touched);
              } else {
                cloned_side(child, cloned, mutated, scratch_touched);
              }
              if (scratch_touched.size() < hint.touched.size()) {
                hint.parent = static_cast<std::uint32_t>(
                    cloned_first ? donor_index : cloned_index);
                hint.touched.swap(scratch_touched);
              }
            };
            fill_hint(hints_[2 * pair], child_a, meta[i].genome, i,
                      meta[j].genome, j, mutated_a);
            fill_hint(hints_[2 * pair + 1], child_b, meta[j].genome, j,
                      meta[i].genome, i, mutated_b);
          }
          meta.push_back({std::move(child_a), {}, 0, 0.0});
          meta.push_back({std::move(child_b), {}, 0, 0.0});
        }
        if (interleave) {
          // Serial evaluation: take each child while its genome is still
          // cache-hot from the operators (see inline_evaluation()).
          const ScopedTimer eval_timed(timer_evaluation_);
          evaluate_individual(meta, meta.size() - 2, &hints_[2 * pair],
                              false);
          evaluate_individual(meta, meta.size() - 1, &hints_[2 * pair + 1],
                              false);
        }
      }
    }

    // Only the fresh offspring need evaluating (parents carry theirs);
    // under interleaved evaluation they already were, pair by pair.
    if (interleave) {
      evaluations_ += n;
      if (metric_evaluations_ != nullptr) metric_evaluations_->add(n);
    } else {
      evaluate_all(meta, n, &hints_);
    }

    // Steps 6-11: elitist environmental selection.
    {
      const ScopedTimer timed(timer_selection_);
      annotate_and_select(meta);
    }
    population_ = std::move(meta);
    ++generation_;
    if (metric_generations_ != nullptr) {
      metric_generations_->add(1);
      std::size_t front_size = 0;
      for (const auto& ind : population_) {
        if (ind.rank == 0) ++front_size;
      }
      metric_front_size_->set(static_cast<double>(front_size));
    }
    if (observer_) observer_(generation_, population_);
  }
}

std::vector<Individual> Nsga2::front() const {
  std::vector<Individual> out;
  for (const auto& ind : population_) {
    if (ind.rank == 0) out.push_back(ind);
  }
  // Canonical presentation order: ascending energy, descending utility on
  // ties — the same sweep order pareto/front.cpp uses, so checkpoint front
  // dumps are ordered identically everywhere.
  std::sort(out.begin(), out.end(),
            [](const Individual& a, const Individual& b) {
              return front_order_less(a.objectives, b.objectives);
            });
  return out;
}

std::vector<EUPoint> Nsga2::front_points() const {
  std::vector<EUPoint> out;
  for (const auto& ind : front()) out.push_back(ind.objectives);
  return out;
}

}  // namespace eus
