#include "core/nondominated_sort.hpp"

#include <algorithm>
#include <cstdint>

namespace eus {

SortedFronts nondominated_sort(const std::vector<EUPoint>& points) {
  return nondominated_sort_sweep(points);
}

SortedFronts nondominated_sort_deb(const std::vector<EUPoint>& points) {
  const std::size_t n = points.size();
  SortedFronts out;
  out.rank.assign(n, 0);
  if (n == 0) return out;

  // Deb's bookkeeping: who I dominate, and how many dominate me.
  std::vector<std::vector<std::uint32_t>> dominated(n);
  std::vector<std::uint32_t> dominators(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(points[i], points[j])) {
        dominated[i].push_back(static_cast<std::uint32_t>(j));
        ++dominators[j];
      } else if (dominates(points[j], points[i])) {
        dominated[j].push_back(static_cast<std::uint32_t>(i));
        ++dominators[i];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dominators[i] == 0) current.push_back(i);
  }

  while (!current.empty()) {
    const std::size_t r = out.fronts.size();
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      out.rank[i] = r;
      for (const std::uint32_t j : dominated[i]) {
        if (--dominators[j] == 0) next.push_back(j);
      }
    }
    out.fronts.push_back(std::move(current));
    current = std::move(next);
  }

  // Deterministic presentation: ascending energy within each front.
  for (auto& front : out.fronts) {
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      if (points[a].energy != points[b].energy) {
        return points[a].energy < points[b].energy;
      }
      return a < b;
    });
  }
  return out;
}

SortedFronts nondominated_sort_sweep(const std::vector<EUPoint>& points) {
  const std::size_t n = points.size();
  SortedFronts out;
  out.rank.assign(n, 0);
  if (n == 0) return out;

  // Sweep order: ascending energy, ties by descending utility, then index.
  // Any point q processed before p satisfies q.energy <= p.energy, so q
  // dominates p iff q.utility >= p.utility with strictness in one
  // objective; exact duplicates never dominate each other.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (points[a].energy != points[b].energy) {
      return points[a].energy < points[b].energy;
    }
    if (points[a].utility != points[b].utility) {
      return points[a].utility > points[b].utility;
    }
    return a < b;
  });

  // best[r] = the processed rank-r point that is hardest to escape: maximum
  // utility, and among those the minimum energy.  best[r].utility is
  // non-increasing in r, and "some rank-r point dominates p" is monotone in
  // r (dominance is transitive), so binary search applies.
  std::vector<EUPoint> best;
  best.reserve(64);

  const auto rank_dominates = [&](std::size_t r, const EUPoint& p) {
    const EUPoint& b = best[r];
    if (b.utility > p.utility) return true;   // b also has energy <= p's
    if (b.utility < p.utility) return false;
    // Equal utility: dominates iff strictly less energy.
    return b.energy < p.energy;
  };

  for (const std::uint32_t i : order) {
    const EUPoint& p = points[i];
    // First rank that does NOT dominate p.
    std::size_t lo = 0;
    std::size_t hi = best.size();  // rank == best.size() -> new front
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (rank_dominates(mid, p)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out.rank[i] = lo;
    if (lo == best.size()) {
      best.push_back(p);
      out.fronts.emplace_back();
    } else {
      EUPoint& b = best[lo];
      if (p.utility > b.utility ||
          (p.utility == b.utility && p.energy < b.energy)) {
        b = p;
      }
    }
    out.fronts[lo].push_back(i);
  }

  // Sweep order within a rank is already ascending energy (ties by
  // descending utility then index) — matching nondominated_sort_deb's
  // presentation except for equal-energy ties, which we normalize here.
  for (auto& front : out.fronts) {
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      if (points[a].energy != points[b].energy) {
        return points[a].energy < points[b].energy;
      }
      return a < b;
    });
  }
  return out;
}

std::vector<std::size_t> domination_counts(const std::vector<EUPoint>& points) {
  const std::size_t n = points.size();
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && dominates(points[j], points[i])) ++counts[i];
    }
  }
  return counts;
}

}  // namespace eus
