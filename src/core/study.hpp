#pragma once

// The experiment harness behind Figures 3, 4 and 6: one NSGA-II population
// per seeding strategy (four greedy seeds, an all-random control, and
// optionally the all-four-seeds variant the paper mentions), evolved
// through a shared schedule of iteration checkpoints, capturing each
// population's Pareto front at every checkpoint.

#include <functional>
#include <string>
#include <vector>

#include "core/nsga2.hpp"
#include "heuristics/seeds.hpp"

namespace eus {

struct PopulationSpec {
  std::string name;
  char marker = '*';  ///< scatter-plot marker, mirroring the paper's legend
  /// Seeds injected into the initial population (empty == all random).
  std::vector<SeedHeuristic> seeds;
};

/// The five populations of Figures 3/4/6: min-energy (diamond 'd'),
/// min-min completion time (square 's'), max-utility (circle 'o'),
/// max-utility-per-energy (triangle '^'), all-random (star '*').
[[nodiscard]] std::vector<PopulationSpec> paper_population_specs();

/// paper_population_specs() plus the "all four seeds" population that §VI
/// reports behaves like the min-energy-seeded one.
[[nodiscard]] std::vector<PopulationSpec> extended_population_specs();

struct StudyResult {
  std::vector<std::string> population_names;
  std::vector<char> markers;
  std::vector<std::size_t> checkpoints;  ///< cumulative iteration counts
  /// fronts[p][c]: population p's rank-0 objective points at checkpoint c.
  std::vector<std::vector<std::vector<EUPoint>>> fronts;
  /// Final full fronts (same as the last checkpoint, kept for convenience).
  [[nodiscard]] const std::vector<EUPoint>& final_front(std::size_t p) const {
    return fronts.at(p).back();
  }
};

/// Progress callback: (population name, iterations completed).
using StudyProgress =
    std::function<void(const std::string&, std::size_t)>;

/// Runs every population through the checkpoint schedule, serially (a
/// convenience wrapper over a serial StudyEngine; use StudyEngine directly
/// to evolve populations concurrently — results are bit-identical either
/// way).  `base_config`'s seed is perturbed per population so the random
/// fills differ, as in the paper's independent populations.  Checkpoints
/// must be strictly increasing and non-empty; specs must be non-empty.
[[nodiscard]] StudyResult run_seeding_study(
    const BiObjectiveProblem& problem, const Nsga2Config& base_config,
    const std::vector<std::size_t>& checkpoints,
    const std::vector<PopulationSpec>& specs,
    const StudyProgress& progress = {});

/// Scales the paper's checkpoint schedule (e.g. {100, 1000, 10000, 100000})
/// by EUS_SCALE, keeping every entry >= 1 and strictly increasing.
[[nodiscard]] std::vector<std::size_t> scaled_checkpoints(
    std::vector<std::size_t> paper_schedule, double scale);

}  // namespace eus
