#pragma once

// Weighted-sum simulated annealing — the style of bi-objective solver the
// paper contrasts itself against in §II ("a weighted sum simulated
// annealing heuristic ... One run of this heuristic produces a single
// solution, and different weights can be used to produce different
// solutions.  This differs from our approach in that ... [NSGA-II] creates
// a Pareto front containing multiple solutions with one run").
//
// Implementing it makes that argument measurable: bench_baseline_sa gives
// SA the same total evaluation budget as one NSGA-II run, spread across a
// sweep of weights, and compares the resulting point sets.

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace eus {

struct SaOptions {
  /// Scalarization weight in [0, 1]: score = lambda*U/u0 - (1-lambda)*E/e0
  /// with u0/e0 taken from the start point (same convention as
  /// local_search).
  double lambda = 0.5;
  /// Fitness-evaluation budget.
  std::size_t max_evaluations = 1000;
  /// Initial temperature as a fraction of |score(start)| (>= 0); the
  /// classic "accept almost anything at first" regime.
  double initial_temperature = 0.5;
  /// Geometric cooling factor per temperature step, in (0, 1).
  double cooling = 0.95;
  /// Proposals evaluated at each temperature.
  std::size_t steps_per_temperature = 20;
};

struct SaResult {
  Allocation allocation;   ///< best-ever genome
  EUPoint objectives;      ///< its objectives
  std::size_t evaluations = 0;
  std::size_t accepted = 0;  ///< accepted moves (incl. uphill)
};

/// Runs one annealing chain from `start`.  Deterministic given rng state.
/// Throws std::invalid_argument on bad options or start size.
[[nodiscard]] SaResult simulated_annealing(const BiObjectiveProblem& problem,
                                           Allocation start,
                                           const SaOptions& options,
                                           Rng& rng);

/// The §II workflow: one SA run per weight (evaluations split evenly),
/// each from its own random start; returns the per-weight best points in
/// weight order.  This is what a front costs when the solver only yields
/// one solution per run.
[[nodiscard]] std::vector<SaResult> weighted_sum_sweep(
    const BiObjectiveProblem& problem, const std::vector<double>& lambdas,
    std::size_t total_evaluations, Rng& rng);

}  // namespace eus
