#pragma once

// Genetic operators (§IV-D).  A gene is a task: it carries the machine the
// task runs on and its global scheduling order (plus an optional DVFS
// P-state).  Crossover swaps a contiguous gene segment between two
// chromosomes; mutation reassigns one gene's machine and swaps its
// scheduling order with another gene's.

#include "core/problem.hpp"
#include "sched/allocation.hpp"
#include "util/rng.hpp"

namespace eus {

/// Uniformly random complete allocation: each task on a uniformly random
/// eligible machine, scheduling orders a uniform permutation of 0..T-1,
/// and (when the problem has P-states) uniformly random P-states.
[[nodiscard]] Allocation random_allocation(const BiObjectiveProblem& problem,
                                           Rng& rng);

/// The gene span a crossover swapped, reported for delta-evaluation
/// ([lo, hi] inclusive; empty == no swap happened, e.g. zero-size genomes).
struct CrossoverSegment {
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool swapped = false;
};

/// Two-point segment crossover: picks two gene indices i <= j uniformly and
/// swaps genes [i, j] wholesale (machines, orders, P-states) between the
/// chromosomes, in place.  When `segment` is non-null the swapped span is
/// reported there (both children share it); recording never changes the
/// RNG draw sequence.
void crossover(Allocation& a, Allocation& b, Rng& rng,
               CrossoverSegment* segment = nullptr);

/// The paper's mutation: one uniformly chosen gene moves to a uniformly
/// chosen *eligible* machine; then its global scheduling order is swapped
/// with a second uniformly chosen gene's.  With P-states present, the
/// mutated gene's P-state is also re-drawn.  When `touched` is non-null
/// the indices of both affected genes are appended (duplicates possible);
/// recording never changes the RNG draw sequence.
void mutate(Allocation& a, const BiObjectiveProblem& problem, Rng& rng,
            std::vector<std::uint32_t>* touched = nullptr);

/// Appends to `out` every gene in [lo, hi] (inclusive, clamped to the
/// genome) where `child` actually differs from `parent` — segment swaps
/// between converged parents copy mostly-equal genes, so the true delta is
/// usually far smaller than the segment.  The gene lists must be
/// shape-compatible (same sizes, same pstate presence).
void collect_touched(const Allocation& child, const Allocation& parent,
                     std::size_t lo, std::size_t hi,
                     std::vector<std::uint32_t>& out);

/// Rewrites `order` into the permutation 0..T-1 that preserves the current
/// execution sequence (stable by (order, index)).  Optional repair used by
/// the encoding ablation: segment crossover can duplicate order values, and
/// this restores the strict-permutation reading of §IV-D.
void repair_order_permutation(Allocation& a);

}  // namespace eus
