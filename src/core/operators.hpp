#pragma once

// Genetic operators (§IV-D).  A gene is a task: it carries the machine the
// task runs on and its global scheduling order (plus an optional DVFS
// P-state).  Crossover swaps a contiguous gene segment between two
// chromosomes; mutation reassigns one gene's machine and swaps its
// scheduling order with another gene's.

#include "core/problem.hpp"
#include "sched/allocation.hpp"
#include "util/rng.hpp"

namespace eus {

/// Uniformly random complete allocation: each task on a uniformly random
/// eligible machine, scheduling orders a uniform permutation of 0..T-1,
/// and (when the problem has P-states) uniformly random P-states.
[[nodiscard]] Allocation random_allocation(const BiObjectiveProblem& problem,
                                           Rng& rng);

/// Two-point segment crossover: picks two gene indices i <= j uniformly and
/// swaps genes [i, j] wholesale (machines, orders, P-states) between the
/// chromosomes, in place.
void crossover(Allocation& a, Allocation& b, Rng& rng);

/// The paper's mutation: one uniformly chosen gene moves to a uniformly
/// chosen *eligible* machine; then its global scheduling order is swapped
/// with a second uniformly chosen gene's.  With P-states present, the
/// mutated gene's P-state is also re-drawn.
void mutate(Allocation& a, const BiObjectiveProblem& problem, Rng& rng);

/// Rewrites `order` into the permutation 0..T-1 that preserves the current
/// execution sequence (stable by (order, index)).  Optional repair used by
/// the encoding ablation: segment crossover can duplicate order values, and
/// this restores the strict-permutation reading of §IV-D.
void repair_order_permutation(Allocation& a);

}  // namespace eus
