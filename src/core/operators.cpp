#include "core/operators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace eus {

Allocation random_allocation(const BiObjectiveProblem& problem, Rng& rng) {
  const SystemModel& system = problem.system();
  const Trace& trace = problem.trace();
  const std::size_t tasks = trace.size();

  Allocation a;
  a.machine.resize(tasks);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto& eligible = system.eligible_machines(trace.tasks()[i].type);
    a.machine[i] = eligible[rng.below(eligible.size())];
    a.order[i] = static_cast<int>(i);
  }
  // Fisher-Yates for the order permutation.
  for (std::size_t i = tasks; i > 1; --i) {
    std::swap(a.order[i - 1], a.order[rng.below(i)]);
  }
  if (const std::size_t p = problem.num_pstates(); p > 0) {
    a.pstate.resize(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
      a.pstate[i] = static_cast<int>(rng.below(p));
    }
  }
  return a;
}

void crossover(Allocation& a, Allocation& b, Rng& rng,
               CrossoverSegment* segment) {
  const std::size_t tasks = a.size();
  if (b.size() != tasks) throw std::invalid_argument("genome size mismatch");
  if (tasks == 0) return;

  std::size_t i = rng.below(tasks);
  std::size_t j = rng.below(tasks);
  if (i > j) std::swap(i, j);

  for (std::size_t g = i; g <= j; ++g) {
    std::swap(a.machine[g], b.machine[g]);
    std::swap(a.order[g], b.order[g]);
  }
  if (!a.pstate.empty() && !b.pstate.empty()) {
    for (std::size_t g = i; g <= j; ++g) {
      std::swap(a.pstate[g], b.pstate[g]);
    }
  }
  if (segment != nullptr) *segment = {i, j, true};
}

void mutate(Allocation& a, const BiObjectiveProblem& problem, Rng& rng,
            std::vector<std::uint32_t>* touched) {
  const std::size_t tasks = a.size();
  if (tasks == 0) return;
  const Trace& trace = problem.trace();

  const std::size_t g = rng.below(tasks);
  const auto& eligible =
      problem.system().eligible_machines(trace.tasks()[g].type);
  a.machine[g] = eligible[rng.below(eligible.size())];

  const std::size_t h = rng.below(tasks);
  std::swap(a.order[g], a.order[h]);

  if (!a.pstate.empty()) {
    a.pstate[g] = static_cast<int>(rng.below(problem.num_pstates()));
  }
  if (touched != nullptr) {
    touched->push_back(static_cast<std::uint32_t>(g));
    touched->push_back(static_cast<std::uint32_t>(h));
  }
}

void collect_touched(const Allocation& child, const Allocation& parent,
                     std::size_t lo, std::size_t hi,
                     std::vector<std::uint32_t>& out) {
  const std::size_t tasks = child.size();
  if (tasks == 0) return;
  hi = std::min(hi, tasks - 1);
  const bool pstates = !child.pstate.empty();
  for (std::size_t g = lo; g <= hi; ++g) {
    if (child.machine[g] != parent.machine[g] ||
        child.order[g] != parent.order[g] ||
        (pstates && child.pstate[g] != parent.pstate[g])) {
      out.push_back(static_cast<std::uint32_t>(g));
    }
  }
}

void repair_order_permutation(Allocation& a) {
  const std::size_t tasks = a.size();
  std::vector<std::uint32_t> sequence(tasks);
  std::iota(sequence.begin(), sequence.end(), 0U);
  std::sort(sequence.begin(), sequence.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return a.order[x] != a.order[y] ? a.order[x] < a.order[y]
                                              : x < y;
            });
  for (std::size_t pos = 0; pos < tasks; ++pos) {
    a.order[sequence[pos]] = static_cast<int>(pos);
  }
}

}  // namespace eus
