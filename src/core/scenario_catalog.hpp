#pragma once

// Named-scenario catalog with atomic snapshot/swap semantics, the core
// piece behind eus_served's `catalog-reload` admin verb.  A catalog maps
// operator-chosen aliases ("quick", "tenant-a-nightly", ...) onto concrete
// recipes over the built-in scenario constructors; the serving layer
// resolves an aliased request to its recipe *before* fingerprinting, so a
// reload naturally invalidates nothing and collides with nothing — two
// aliases for the same underlying scenario share one cache entry.
//
// Hot-swap contract: readers take an immutable std::shared_ptr snapshot
// and keep using it for as long as they need (an in-flight request
// finishes against the catalog it was accepted under); swap() publishes a
// whole replacement catalog atomically, so no reader ever observes a
// half-edited entry set.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eus {

/// One catalog entry: an alias plus the concrete parameters it pins.
/// `base` selects the built-in constructor; `tasks`/`window_s` only apply
/// to the "custom" base (the datasets fix their own trace shape).
struct ScenarioRecipe {
  std::string name;           ///< the alias clients request by
  std::string base;           ///< "dataset1" | "dataset2" | "dataset3" | "custom"
  std::uint64_t seed = 20130520;
  std::size_t tasks = 60;     ///< custom base only
  double window_s = 120.0;    ///< custom base only
};

/// Immutable, validated alias -> recipe map.  Construction throws
/// std::invalid_argument on an empty/duplicate/built-in-shadowing alias,
/// an unknown base, or out-of-range custom parameters — a reload either
/// swaps in a fully coherent catalog or changes nothing.
class ScenarioCatalog {
 public:
  ScenarioCatalog() = default;  ///< the empty catalog (built-ins only)
  explicit ScenarioCatalog(std::vector<ScenarioRecipe> recipes);

  /// The recipe for `alias`, or nullptr when the catalog has no such
  /// entry (built-in names are never listed here — see is_builtin_name).
  [[nodiscard]] const ScenarioRecipe* find(std::string_view alias) const;

  [[nodiscard]] std::size_t size() const noexcept { return recipes_.size(); }
  [[nodiscard]] const std::vector<ScenarioRecipe>& recipes() const noexcept {
    return recipes_;
  }

  /// Whether `name` is one of the always-available built-in scenario
  /// names ("dataset1".."dataset3", "custom", "inline").  Aliases may not
  /// shadow these: served built-ins must stay bit-identical to offline
  /// StudyEngine runs no matter what catalog is loaded.
  [[nodiscard]] static bool is_builtin_name(std::string_view name) noexcept;

 private:
  std::vector<ScenarioRecipe> recipes_;  ///< sorted by name for lookup
};

/// The swap point: one mutable slot holding the current immutable catalog.
/// Readers snapshot(), writers swap(); both are cheap (one mutex-guarded
/// shared_ptr copy) and never block a reader on a reload.
class SharedCatalog {
 public:
  SharedCatalog() : current_(std::make_shared<const ScenarioCatalog>()) {}

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The current catalog; the returned snapshot stays valid (and
  /// unchanged) across any number of subsequent swaps.
  [[nodiscard]] std::shared_ptr<const ScenarioCatalog> snapshot() const {
    const std::lock_guard lock(mutex_);
    return current_;
  }

  /// Atomically publishes `next` as the current catalog and returns the
  /// new generation number (the empty boot catalog is generation 0).
  std::uint64_t swap(std::shared_ptr<const ScenarioCatalog> next);

  [[nodiscard]] std::uint64_t generation() const {
    const std::lock_guard lock(mutex_);
    return generation_;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ScenarioCatalog> current_;
  std::uint64_t generation_ = 0;
};

}  // namespace eus
