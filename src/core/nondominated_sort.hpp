#pragma once

// Fast nondominated sorting (Deb et al. 2002, the NSGA-II paper's
// algorithm) over the bi-objective points.  Rank 0 is the nondominated set
// ("rank 1" in the paper's prose); each solution's rank counts how many
// successive fronts must be peeled before it becomes nondominated.

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

struct SortedFronts {
  /// fronts[r] = indices (into the input) of rank r, ascending energy.
  std::vector<std::vector<std::size_t>> fronts;
  /// rank[i] = rank of input point i.
  std::vector<std::size_t> rank;
};

/// Nondominated sort.  Dispatches to the O(N log N) bi-objective sweep
/// (Jensen 2003-style); result is identical to Deb's algorithm.
[[nodiscard]] SortedFronts nondominated_sort(const std::vector<EUPoint>& points);

/// Deb et al. 2002's O(M N^2) bookkeeping algorithm, kept as the reference
/// implementation (tests assert it matches the sweep) and for the
/// microbench comparison.
[[nodiscard]] SortedFronts nondominated_sort_deb(
    const std::vector<EUPoint>& points);

/// O(N log N) sweep: process points in (energy asc, utility desc) order;
/// a point's rank is the first front whose best-so-far point does not
/// dominate it, found by binary search (dominance is transitive, so the
/// predicate is monotone across fronts).
[[nodiscard]] SortedFronts nondominated_sort_sweep(
    const std::vector<EUPoint>& points);

/// Brute-force per-point rank-by-domination-count used by tests as an
/// oracle for the *first* front only (the paper's "1 + number of dominating
/// solutions" notion differs from Deb's peeling for deeper fronts).
[[nodiscard]] std::vector<std::size_t> domination_counts(
    const std::vector<EUPoint>& points);

}  // namespace eus
