#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace eus {
namespace {

double score(const EUPoint& p, double lambda, double u_scale,
             double e_scale) {
  return lambda * p.utility / u_scale - (1.0 - lambda) * p.energy / e_scale;
}

}  // namespace

LocalSearchResult local_search(const BiObjectiveProblem& problem,
                               Allocation start,
                               const LocalSearchOptions& options, Rng& rng) {
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    throw std::invalid_argument("lambda must lie in [0, 1]");
  }
  if (start.size() != problem.genome_size()) {
    throw std::invalid_argument("start allocation size mismatch");
  }
  const std::size_t tasks = start.size();
  const SystemModel& system = problem.system();
  const Trace& trace = problem.trace();

  // Single-gene moves are the delta-evaluator's best case: only the one or
  // two machines a move touches get re-simulated.  Fronts stay
  // bit-identical with the seam disabled (see docs/evaluator.md).
  const Evaluator* ev = problem.incremental_evaluator();
  const bool use_delta = ev != nullptr && ev->incremental_on();
  EvalState state;
  EvalState candidate_state;
  std::vector<std::uint32_t> touched;

  LocalSearchResult result;
  result.allocation = std::move(start);
  result.objectives =
      use_delta ? problem.objectives_of(ev->evaluate(result.allocation, state))
                : problem.evaluate(result.allocation);
  result.evaluations = 1;
  if (tasks == 0) return result;

  const double u_scale = std::max(std::abs(result.objectives.utility), 1.0);
  const double e_scale = std::max(std::abs(result.objectives.energy), 1.0);
  double current =
      score(result.objectives, options.lambda, u_scale, e_scale);

  std::size_t stale = 0;
  while (result.evaluations < options.max_evaluations &&
         stale < options.patience) {
    Allocation candidate = result.allocation;
    touched.clear();
    if (rng.chance(0.5)) {
      // Relocate one task to another eligible machine.
      const std::size_t g = rng.below(tasks);
      const auto& eligible =
          system.eligible_machines(trace.tasks()[g].type);
      candidate.machine[g] =
          eligible[rng.below(eligible.size())];
      touched.push_back(static_cast<std::uint32_t>(g));
    } else {
      // Swap two tasks' scheduling orders.
      const std::size_t g = rng.below(tasks);
      const std::size_t h = rng.below(tasks);
      std::swap(candidate.order[g], candidate.order[h]);
      touched.push_back(static_cast<std::uint32_t>(g));
      touched.push_back(static_cast<std::uint32_t>(h));
    }
    if (!candidate.pstate.empty() && rng.chance(0.25)) {
      const std::size_t p = rng.below(tasks);
      candidate.pstate[p] =
          static_cast<int>(rng.below(problem.num_pstates()));
      touched.push_back(static_cast<std::uint32_t>(p));
    }

    const EUPoint objectives =
        use_delta ? problem.objectives_of(ev->evaluate_incremental(
                        candidate, result.allocation, state, touched,
                        candidate_state, /*trusted_child=*/true))
                  : problem.evaluate(candidate);
    ++result.evaluations;
    const double candidate_score =
        score(objectives, options.lambda, u_scale, e_scale);
    if (candidate_score > current ||
        dominates(objectives, result.objectives)) {
      result.allocation = std::move(candidate);
      result.objectives = objectives;
      std::swap(state, candidate_state);
      current = candidate_score;
      ++result.improvements;
      stale = 0;
    } else {
      ++stale;
    }
  }
  return result;
}

std::vector<LocalSearchResult> polish_front(
    const BiObjectiveProblem& problem, const std::vector<Allocation>& front,
    std::size_t evaluations_each, Rng& rng) {
  std::vector<LocalSearchResult> out;
  out.reserve(front.size());
  const std::size_t n = front.size();
  for (std::size_t i = 0; i < n; ++i) {
    LocalSearchOptions options;
    options.lambda =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.5;
    options.max_evaluations = evaluations_each;
    options.patience = std::max<std::size_t>(10, evaluations_each / 4);
    out.push_back(local_search(problem, front[i], options, rng));
  }
  return out;
}

}  // namespace eus
