#include "core/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/operators.hpp"

namespace eus {
namespace {

double score(const EUPoint& p, double lambda, double u_scale,
             double e_scale) {
  return lambda * p.utility / u_scale - (1.0 - lambda) * p.energy / e_scale;
}

}  // namespace

SaResult simulated_annealing(const BiObjectiveProblem& problem,
                             Allocation start, const SaOptions& options,
                             Rng& rng) {
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    throw std::invalid_argument("lambda must lie in [0, 1]");
  }
  if (!(options.cooling > 0.0 && options.cooling < 1.0)) {
    throw std::invalid_argument("cooling must lie in (0, 1)");
  }
  if (options.initial_temperature < 0.0) {
    throw std::invalid_argument("initial temperature must be >= 0");
  }
  if (options.steps_per_temperature == 0) {
    throw std::invalid_argument("steps_per_temperature must be >= 1");
  }
  if (start.size() != problem.genome_size()) {
    throw std::invalid_argument("start allocation size mismatch");
  }

  // The annealing chain mutates one gene pair per step — ideal for the
  // delta-evaluator, which re-simulates only the touched machines while
  // producing bit-identical objectives (see docs/evaluator.md).
  const Evaluator* ev = problem.incremental_evaluator();
  const bool use_delta = ev != nullptr && ev->incremental_on();
  EvalState state;
  EvalState candidate_state;
  std::vector<std::uint32_t> touched;

  SaResult best;
  Allocation current = std::move(start);
  EUPoint current_obj =
      use_delta ? problem.objectives_of(ev->evaluate(current, state))
                : problem.evaluate(current);
  best.allocation = current;
  best.objectives = current_obj;
  best.evaluations = 1;
  if (current.size() == 0) return best;

  const double u_scale = std::max(std::abs(current_obj.utility), 1.0);
  const double e_scale = std::max(std::abs(current_obj.energy), 1.0);
  double current_score =
      score(current_obj, options.lambda, u_scale, e_scale);
  double best_score = current_score;
  double temperature =
      options.initial_temperature * std::max(std::abs(current_score), 1.0);

  std::size_t step_in_level = 0;
  while (best.evaluations < options.max_evaluations) {
    Allocation candidate = current;
    touched.clear();
    mutate(candidate, problem, rng,  // the paper-style neighborhood move
           use_delta ? &touched : nullptr);

    const EUPoint obj =
        use_delta ? problem.objectives_of(ev->evaluate_incremental(
                        candidate, current, state, touched, candidate_state,
                        /*trusted_child=*/true))
                  : problem.evaluate(candidate);
    ++best.evaluations;
    const double s = score(obj, options.lambda, u_scale, e_scale);
    const double delta = s - current_score;

    bool accept = delta >= 0.0;
    if (!accept && temperature > 0.0) {
      accept = rng.uniform() < std::exp(delta / temperature);
    }
    if (accept) {
      current = std::move(candidate);
      current_obj = obj;
      std::swap(state, candidate_state);
      current_score = s;
      ++best.accepted;
      if (s > best_score) {
        best_score = s;
        best.allocation = current;
        best.objectives = current_obj;
      }
    }

    if (++step_in_level >= options.steps_per_temperature) {
      step_in_level = 0;
      temperature *= options.cooling;
    }
  }
  return best;
}

std::vector<SaResult> weighted_sum_sweep(const BiObjectiveProblem& problem,
                                         const std::vector<double>& lambdas,
                                         std::size_t total_evaluations,
                                         Rng& rng) {
  if (lambdas.empty()) {
    throw std::invalid_argument("weighted-sum sweep needs >= 1 weight");
  }
  std::vector<SaResult> results;
  results.reserve(lambdas.size());
  const std::size_t budget_each =
      std::max<std::size_t>(1, total_evaluations / lambdas.size());
  for (const double lambda : lambdas) {
    SaOptions options;
    options.lambda = lambda;
    options.max_evaluations = budget_each;
    Rng chain = rng.split();
    results.push_back(simulated_annealing(
        problem, random_allocation(problem, chain), options, chain));
  }
  return results;
}

}  // namespace eus
