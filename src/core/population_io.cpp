#include "core/population_io.hpp"

#include <sstream>
#include <stdexcept>

#include "sched/allocation_io.hpp"

namespace eus {

std::string population_to_string(const std::vector<Allocation>& genomes) {
  std::ostringstream os;
  for (std::size_t k = 0; k < genomes.size(); ++k) {
    os << "[genome " << k << "]\n" << allocation_to_csv(genomes[k]);
  }
  return os.str();
}

std::vector<Allocation> population_from_string(const std::string& text) {
  std::vector<Allocation> genomes;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::string header =
        "[genome " + std::to_string(genomes.size()) + "]\n";
    if (text.compare(pos, header.size(), header) != 0) {
      throw std::runtime_error("expected '" + header.substr(0, header.size() - 1) +
                               "' at offset " + std::to_string(pos));
    }
    pos += header.size();
    const std::size_t next = text.find("[genome ", pos);
    const std::size_t end = next == std::string::npos ? text.size() : next;
    genomes.push_back(allocation_from_csv(text.substr(pos, end - pos)));
    if (!genomes.front().machine.empty() &&
        genomes.back().size() != genomes.front().size()) {
      throw std::runtime_error("inconsistent genome sizes in population");
    }
    pos = end;
  }
  return genomes;
}

}  // namespace eus
