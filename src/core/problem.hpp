#pragma once

// The bi-objective resource-allocation problem interface consumed by the
// NSGA-II.  Objectives are reported as an EUPoint: `energy` is minimized
// and `utility` maximized (Figure 2's axes).  Problems with different
// semantics map into that convention (see MakespanEnergyProblem).

#include <cstddef>

#include "pareto/point.hpp"
#include "sched/evaluator.hpp"

namespace eus {

class BiObjectiveProblem {
 public:
  virtual ~BiObjectiveProblem() = default;

  /// Number of genes (== trace size).
  [[nodiscard]] virtual std::size_t genome_size() const = 0;

  /// Objective values of a complete allocation.  Must be thread-safe.
  [[nodiscard]] virtual EUPoint evaluate(const Allocation& allocation)
      const = 0;

  /// Catalog access for genetic operators (eligibility, arrival times).
  [[nodiscard]] virtual const SystemModel& system() const = 0;
  [[nodiscard]] virtual const Trace& trace() const = 0;

  /// Number of DVFS P-states a pstate gene may take; 0 disables the gene.
  [[nodiscard]] virtual std::size_t num_pstates() const { return 0; }

  /// Delta-evaluation seam: the Evaluator behind evaluate(), or nullptr
  /// when this problem has none (optimizers then always re-simulate from
  /// scratch).  A non-null return promises that
  /// objectives_of(evaluator->evaluate(a)) == evaluate(a) bit for bit, so
  /// callers may route through Evaluator::evaluate_incremental and map the
  /// result with objectives_of without perturbing fronts.
  [[nodiscard]] virtual const Evaluator* incremental_evaluator()
      const noexcept {
    return nullptr;
  }

  /// Maps a raw simulator Evaluation into this problem's (energy, utility)
  /// point convention.  Only meaningful when incremental_evaluator() is
  /// non-null; the default is the paper's utility/energy reading.
  [[nodiscard]] virtual EUPoint objectives_of(const Evaluation& e) const {
    return {e.energy, e.utility};
  }
};

/// The paper's primary problem: maximize total utility earned, minimize
/// total energy consumed (§IV-B).
class UtilityEnergyProblem final : public BiObjectiveProblem {
 public:
  UtilityEnergyProblem(const SystemModel& system, const Trace& trace,
                       EvaluatorOptions options = {})
      : evaluator_(system, trace, std::move(options)) {}

  [[nodiscard]] std::size_t genome_size() const override {
    return evaluator_.trace().size();
  }
  [[nodiscard]] EUPoint evaluate(const Allocation& a) const override {
    const Evaluation e = evaluator_.evaluate(a);
    return {e.energy, e.utility};
  }
  [[nodiscard]] const SystemModel& system() const override {
    return evaluator_.system();
  }
  [[nodiscard]] const Trace& trace() const override {
    return evaluator_.trace();
  }
  [[nodiscard]] std::size_t num_pstates() const override {
    return evaluator_.options().dvfs ? evaluator_.options().dvfs->size() : 0;
  }
  [[nodiscard]] const Evaluator* incremental_evaluator()
      const noexcept override {
    return &evaluator_;
  }

  [[nodiscard]] const Evaluator& evaluator() const noexcept {
    return evaluator_;
  }

 private:
  Evaluator evaluator_;
};

/// The predecessor baseline (Friese et al., INFOCOMP 2012, the paper's
/// ref [3]): minimize makespan and energy.  Makespan enters the EUPoint as
/// utility = -makespan so "maximize utility" == "minimize makespan".
class MakespanEnergyProblem final : public BiObjectiveProblem {
 public:
  MakespanEnergyProblem(const SystemModel& system, const Trace& trace,
                        EvaluatorOptions options = {})
      : evaluator_(system, trace, std::move(options)) {}

  [[nodiscard]] std::size_t genome_size() const override {
    return evaluator_.trace().size();
  }
  [[nodiscard]] EUPoint evaluate(const Allocation& a) const override {
    const Evaluation e = evaluator_.evaluate(a);
    return {e.energy, -e.makespan};
  }
  [[nodiscard]] const SystemModel& system() const override {
    return evaluator_.system();
  }
  [[nodiscard]] const Trace& trace() const override {
    return evaluator_.trace();
  }
  [[nodiscard]] std::size_t num_pstates() const override {
    return evaluator_.options().dvfs ? evaluator_.options().dvfs->size() : 0;
  }
  [[nodiscard]] const Evaluator* incremental_evaluator()
      const noexcept override {
    return &evaluator_;
  }
  [[nodiscard]] EUPoint objectives_of(const Evaluation& e) const override {
    return {e.energy, -e.makespan};
  }

 private:
  Evaluator evaluator_;
};

}  // namespace eus
