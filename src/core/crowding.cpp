#include "core/crowding.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace eus {

std::vector<double> crowding_distances(
    const std::vector<EUPoint>& points,
    const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> distance(n, 0.0);
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(), kInf);
    return distance;
  }

  // positions[k] enumerates front-local indices sorted by objective k.
  std::vector<std::size_t> by_obj(n);
  std::iota(by_obj.begin(), by_obj.end(), 0U);

  const auto accumulate = [&](auto key) {
    std::sort(by_obj.begin(), by_obj.end(),
              [&](std::size_t a, std::size_t b) {
                return key(points[front[a]]) < key(points[front[b]]);
              });
    const double lo = key(points[front[by_obj.front()]]);
    const double hi = key(points[front[by_obj.back()]]);
    distance[by_obj.front()] = kInf;
    distance[by_obj.back()] = kInf;
    if (hi <= lo) return;  // degenerate objective: no interior credit
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double below = key(points[front[by_obj[i - 1]]]);
      const double above = key(points[front[by_obj[i + 1]]]);
      if (distance[by_obj[i]] != kInf) {
        distance[by_obj[i]] += (above - below) / (hi - lo);
      }
    }
  };

  accumulate([](const EUPoint& p) { return p.energy; });
  accumulate([](const EUPoint& p) { return p.utility; });
  return distance;
}

}  // namespace eus
