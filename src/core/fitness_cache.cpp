#include "core/fitness_cache.hpp"

#include <algorithm>

#include "core/problem.hpp"

namespace eus {

namespace {

/// SplitMix64 finalizer: decorrelates the accumulated words so the top
/// bits (shard selector) and low bits (hash-table bucket) are both usable.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30U;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27U;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31U;
  return x;
}

constexpr std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U)));
}

/// Hashes one gene vector into the running fingerprint.  A single
/// combine() chain costs ~10 cycles of *latency* per gene (each step
/// depends on the last), which for multi-hundred-task genomes would make
/// the fingerprint as expensive as the evaluation it is meant to avoid.
/// Four independent xor-multiply lanes overlap in the pipeline (~1 cycle
/// per gene); the final combine() restores avalanche so shard-selector
/// and bucket bits are both well mixed.
std::uint64_t hash_genes(std::uint64_t h, const std::vector<int>& genes)
    noexcept {
  const std::size_t n = genes.size();
  h = combine(h, n);  // vector boundaries matter, not just concatenation
  std::uint64_t l0 = h ^ 0x9e3779b97f4a7c15ULL;
  std::uint64_t l1 = h ^ 0xbf58476d1ce4e5b9ULL;
  std::uint64_t l2 = h ^ 0x94d049bb133111ebULL;
  std::uint64_t l3 = h ^ 0x2545f4914f6cdd1dULL;
  const int* g = genes.data();
  const auto word = [](int lo, int hi) noexcept {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi))
            << 32U);
  };
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {  // two genes per word, one multiply per word
    l0 = (l0 ^ word(g[i], g[i + 1])) * 0xff51afd7ed558ccdULL;
    l1 = (l1 ^ word(g[i + 2], g[i + 3])) * 0xc4ceb9fe1a85ec53ULL;
    l2 = (l2 ^ word(g[i + 4], g[i + 5])) * 0x87c37b91114253d5ULL;
    l3 = (l3 ^ word(g[i + 6], g[i + 7])) * 0x4cf5ad432745937fULL;
  }
  for (; i < n; ++i) {
    l0 = mix64(l0 ^ static_cast<std::uint32_t>(g[i]));
  }
  return combine(combine(l0, l1), combine(l2, l3));
}

constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1U;
  return p;
}

constexpr std::size_t round_down_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p * 2 <= n) p <<= 1U;
  return p;
}

}  // namespace

namespace {

/// Branchless, vectorizable gene compare: accumulates XOR instead of
/// early-exiting, so the compiler emits SIMD compares.  At a few hundred
/// genes the branchy element-at-a-time loop costs more than the rest of
/// the lookup combined; the reduction is ~30x cheaper.
template <typename Stored>
int xor_accumulate(const std::vector<int>& genes, const Stored* p) noexcept {
  int diff = 0;
  for (std::size_t i = 0; i < genes.size(); ++i) {
    diff |= genes[i] ^ static_cast<int>(p[i]);  // int16 promotes exactly
  }
  return diff;
}

}  // namespace

bool FitnessCache::Slot::matches(const Allocation& genome) const noexcept {
  if (genome.machine.size() != machine_n || genome.order.size() != order_n ||
      genome.pstate.size() != pstate_n) {
    return false;
  }
  int diff = 0;
  if (narrow) {
    const std::int16_t* p = packed.data();
    diff |= xor_accumulate(genome.machine, p);
    diff |= xor_accumulate(genome.order, p + machine_n);
    diff |= xor_accumulate(genome.pstate, p + machine_n + order_n);
  } else {
    const int* p = wide.data();
    diff |= xor_accumulate(genome.machine, p);
    diff |= xor_accumulate(genome.order, p + machine_n);
    diff |= xor_accumulate(genome.pstate, p + machine_n + order_n);
  }
  return diff == 0;
}

void FitnessCache::Slot::assign(const Allocation& genome) {
  machine_n = static_cast<std::uint32_t>(genome.machine.size());
  order_n = static_cast<std::uint32_t>(genome.order.size());
  pstate_n = static_cast<std::uint32_t>(genome.pstate.size());
  const std::size_t total = machine_n + order_n + pstate_n;
  // Branchless range check: the shifted sum is nonzero iff any gene falls
  // outside [-32768, 32767].  Unsigned arithmetic, so no overflow UB.
  const auto fits_int16 = [](const std::vector<int>& genes) noexcept {
    std::uint32_t acc = 0;
    for (const int g : genes) {
      acc |= (static_cast<std::uint32_t>(g) + 32768U) >> 16U;
    }
    return acc == 0;
  };
  narrow = fits_int16(genome.machine) && fits_int16(genome.order) &&
           fits_int16(genome.pstate);
  if (narrow) {
    wide.clear();
    packed.resize(total);  // same genome shape as the evictee: no realloc
    std::int16_t* p = packed.data();
    const auto append = [&p](const std::vector<int>& genes) noexcept {
      for (const int g : genes) *p++ = static_cast<std::int16_t>(g);
    };
    append(genome.machine);
    append(genome.order);
    append(genome.pstate);
  } else {
    packed.clear();
    wide.resize(total);
    int* p = wide.data();
    const auto append = [&p](const std::vector<int>& genes) noexcept {
      for (const int g : genes) *p++ = g;
    };
    append(genome.machine);
    append(genome.order);
    append(genome.pstate);
  }
}

FitnessCache::FitnessCache(FitnessCacheConfig config)
    : capacity_(std::max<std::size_t>(config.capacity, 1)),
      fingerprinter_(std::move(config.fingerprinter)),
      probe_window_(config.probe_window),
      bypass_window_(std::max<std::size_t>(config.bypass_window, 1)),
      min_hit_rate_(config.min_hit_rate) {
  const std::size_t shards =
      std::clamp<std::size_t>(round_up_pow2(std::max<std::size_t>(
                                  config.shards, 1)),
                              1, 256);
  shard_mask_ = shards - 1;
  const std::size_t per_shard_slots =
      round_down_pow2(std::max<std::size_t>(capacity_ / shards, 1));
  slot_mask_ = per_shard_slots - 1;
  capacity_ = per_shard_slots * shards;
  shards_ = std::make_unique<Shard[]>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].slots.resize(per_shard_slots);
  }
  if (config.metrics != nullptr) {
    metric_hits_ = &config.metrics->counter("cache.hits");
    metric_misses_ = &config.metrics->counter("cache.misses");
    metric_evictions_ = &config.metrics->counter("cache.evictions");
    metric_bypasses_ = &config.metrics->counter("cache.bypassed");
  }
}

void FitnessCache::note_probe(bool hit) {
  if (probe_window_ == 0) return;  // bypassing disabled
  if (hit) window_hits_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n =
      window_events_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < probe_window_) return;
  const auto h = static_cast<double>(
      window_hits_.load(std::memory_order_relaxed));
  window_events_.store(0, std::memory_order_relaxed);
  window_hits_.store(0, std::memory_order_relaxed);
  if (h < min_hit_rate_ * static_cast<double>(n)) {
    bypassing_.store(true, std::memory_order_relaxed);
  }
}

void FitnessCache::note_bypassed() {
  bypasses_.fetch_add(1, std::memory_order_relaxed);
  if (metric_bypasses_ != nullptr) metric_bypasses_->add(1);
  const std::uint64_t n =
      window_events_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < bypass_window_) return;
  window_events_.store(0, std::memory_order_relaxed);
  window_hits_.store(0, std::memory_order_relaxed);
  bypassing_.store(false, std::memory_order_relaxed);
}

std::uint64_t FitnessCache::fingerprint(const Allocation& genome) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi, nothing up the sleeve
  h = hash_genes(h, genome.machine);
  h = hash_genes(h, genome.order);
  h = hash_genes(h, genome.pstate);
  return h;
}

std::uint64_t FitnessCache::fingerprint_of(const Allocation& genome) const {
  return fingerprinter_ ? fingerprinter_(genome) : fingerprint(genome);
}

std::optional<EUPoint> FitnessCache::lookup(const Allocation& genome) const {
  return lookup_at(fingerprint_of(genome), genome);
}

std::optional<EUPoint> FitnessCache::lookup_at(
    std::uint64_t fp, const Allocation& genome) const {
  Shard& shard = shard_for(fp);
  {
    const std::lock_guard lock(shard.mutex);
    const Slot& slot = shard.slots[fp & slot_mask_];
    if (slot.occupied && slot.fp == fp && slot.matches(genome)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (metric_hits_ != nullptr) metric_hits_->add(1);
      return slot.objectives;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_ != nullptr) metric_misses_->add(1);
  return std::nullopt;
}

void FitnessCache::insert(const Allocation& genome,
                          const EUPoint& objectives) {
  insert_at(fingerprint_of(genome), genome, objectives);
}

void FitnessCache::insert_at(std::uint64_t fp, const Allocation& genome,
                             const EUPoint& objectives) {
  Shard& shard = shard_for(fp);
  const std::lock_guard lock(shard.mutex);
  Slot& slot = shard.slots[fp & slot_mask_];
  if (slot.occupied) {
    // Concurrent double-compute of the same genome: keep the original.
    // Evaluation is pure, so both writers hold equal points — first write
    // wins is the bit-stable convention.
    if (slot.fp == fp && slot.matches(genome)) return;
    // Slot conflict or fingerprint collision: the resident genome is
    // evicted in place.  Slot::assign reuses the slot's existing buffers,
    // so steady-state misses allocate nothing.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->add(1);
  } else {
    slot.occupied = true;
    ++shard.occupied_count;
  }
  slot.fp = fp;
  slot.assign(genome);
  slot.objectives = objectives;
}

EUPoint FitnessCache::evaluate(const BiObjectiveProblem& problem,
                               const Allocation& genome) {
  return evaluate_through(genome, [&problem](const Allocation& g) {
    return problem.evaluate(g);
  });
}

std::size_t FitnessCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    const std::lock_guard lock(shards_[s].mutex);
    total += shards_[s].occupied_count;
  }
  return total;
}

}  // namespace eus
