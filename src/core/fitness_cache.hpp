#pragma once

// Memoized fitness for NSGA-II populations.  The algorithm is elitist:
// parents survive across generations and segment-swap crossover between
// similar parents frequently reproduces byte-identical children, so the
// same allocation is re-simulated through Evaluator::run thousands of
// times per study.  The bi-objective evaluation is a pure function of the
// genome, which makes it safely cacheable: a hit returns the exact EUPoint
// computed the first time, so fronts stay bit-identical with the cache on
// or off, at any thread count.
//
// Concurrency: the table is sharded by the high bits of a 64-bit genome
// fingerprint; each shard has its own mutex, so concurrent lookups from
// the population-evaluation pool rarely contend.  Hits verify the full
// genome against the stored copy — a fingerprint collision degrades to a
// miss, never to silent corruption.
//
// Layout: each shard is a fixed, direct-mapped slot array (low fingerprint
// bits select the slot).  An insert landing on an occupied slot evicts the
// resident genome in place, reusing the slot's vector buffers — after
// warm-up the miss path performs no heap allocation, which matters because
// NSGA-II studies push millions of mostly-distinct genomes through the
// cache and a node-based table would pay an allocator round-trip per miss.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "pareto/point.hpp"
#include "sched/allocation.hpp"
#include "telemetry/metrics.hpp"

namespace eus {

class BiObjectiveProblem;

struct FitnessCacheConfig {
  /// Maximum cached genomes across all shards.  Divided evenly; the
  /// per-shard slot count is rounded down to a power of two (>= 1), so the
  /// effective capacity() can be below the request.
  std::size_t capacity = 1U << 12U;
  /// Independently locked shards; rounded up to a power of two in [1, 256].
  std::size_t shards = 16;
  /// Optional telemetry sink: publishes "cache.hits" / "cache.misses" /
  /// "cache.evictions" alongside the cache's own counters.  Must outlive
  /// the cache.
  MetricsRegistry* metrics = nullptr;
  /// Test seam: overrides the genome fingerprint (e.g. a constant hash to
  /// force collisions).  Production code leaves it unset.
  std::function<std::uint64_t(const Allocation&)> fingerprinter;

  /// Adaptive bypass.  Memoization only pays when genomes actually repeat;
  /// on diverse populations every lookup is a miss that still hashes and
  /// copies the whole genome.  evaluate_through therefore probes: after
  /// every `probe_window` memoized evaluations the window's hit rate is
  /// compared against `min_hit_rate`, and when it falls below, the next
  /// `bypass_window` evaluations skip the cache entirely (no fingerprint,
  /// no lookup, no stored copy; counted as "cache.bypassed"), after which
  /// probing resumes.  Results are unaffected — a bypassed evaluation
  /// computes exactly what a missed one would.  probe_window = 0 disables
  /// bypassing (every evaluation goes through the table).
  ///
  /// The default rate is set by the cost ratio, not by intuition: a miss
  /// still pays fingerprint + full genome copy (roughly a third of a small
  /// evaluation), so memoization only breaks even when well over a tenth
  /// of lookups hit.
  std::size_t probe_window = 512;
  std::size_t bypass_window = 8192;
  double min_hit_rate = 0.10;
};

/// Thread-safe, sharded genome -> objectives memo.  Share one instance
/// across every population of a study (see StudyEngineConfig::cache).
class FitnessCache {
 public:
  explicit FitnessCache(FitnessCacheConfig config = {});

  FitnessCache(const FitnessCache&) = delete;
  FitnessCache& operator=(const FitnessCache&) = delete;

  /// 64-bit fingerprint of (machine, order, pstate).  Equal genomes always
  /// fingerprint equally; distinct genomes collide with ~2^-64 probability
  /// (and collisions are caught by full-genome verification).
  [[nodiscard]] static std::uint64_t fingerprint(
      const Allocation& genome) noexcept;

  /// Cached objectives for `genome`, or nullopt.  Counts a hit or a miss.
  [[nodiscard]] std::optional<EUPoint> lookup(const Allocation& genome) const;

  /// Stores `objectives` for `genome` in its direct-mapped slot.  A
  /// different genome already resident there is evicted (counted); storing
  /// a genome that is already resident keeps the original entry.
  void insert(const Allocation& genome, const EUPoint& objectives);

  /// The memoized evaluation: returns the cached objectives when `genome`
  /// was seen before, otherwise computes through `evaluate` (called
  /// without any lock held) and stores the result.  `evaluate` must be a
  /// pure function of the genome.
  template <typename Fn>
  EUPoint evaluate_through(const Allocation& genome, Fn&& evaluate) {
    if (bypassing_.load(std::memory_order_relaxed)) {
      const EUPoint fresh = std::forward<Fn>(evaluate)(genome);
      note_bypassed();
      return fresh;
    }
    // Fingerprint once: the miss path would otherwise pay for it twice
    // (lookup + insert), and misses dominate early generations.
    const std::uint64_t fp = fingerprint_of(genome);
    if (const std::optional<EUPoint> cached = lookup_at(fp, genome)) {
      note_probe(/*hit=*/true);
      return *cached;
    }
    const EUPoint fresh = std::forward<Fn>(evaluate)(genome);
    insert_at(fp, genome, fresh);
    note_probe(/*hit=*/false);
    return fresh;
  }

  /// evaluate_through over BiObjectiveProblem::evaluate.
  EUPoint evaluate(const BiObjectiveProblem& problem,
                   const Allocation& genome);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Evaluations that skipped the table under adaptive bypass (these are
  /// neither hits nor misses).
  [[nodiscard]] std::uint64_t bypasses() const noexcept {
    return bypasses_.load(std::memory_order_relaxed);
  }
  /// True while evaluate_through is currently skipping the table.
  [[nodiscard]] bool bypassing() const noexcept {
    return bypassing_.load(std::memory_order_relaxed);
  }

 private:
  /// One cached genome.  The gene vectors are stored concatenated and,
  /// whenever every gene fits, narrowed to int16 — losslessly, since
  /// membership is range-checked before narrowing.  Hits verify every
  /// gene against this copy (collisions never corrupt); halving the bytes
  /// halves the dominant cost of a lookup, which is cold-memory traffic
  /// against a table the evaluator keeps pushing out of the CPU caches.
  struct Slot {
    std::uint64_t fp = 0;
    std::uint32_t machine_n = 0;
    std::uint32_t order_n = 0;
    std::uint32_t pstate_n = 0;
    bool occupied = false;
    bool narrow = true;
    std::vector<std::int16_t> packed;  ///< common case: all genes int16
    std::vector<int> wide;             ///< fallback for out-of-range genes
    EUPoint objectives{};

    [[nodiscard]] bool matches(const Allocation& genome) const noexcept;
    void assign(const Allocation& genome);
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Slot> slots;  ///< fixed size, direct-mapped by low fp bits
    std::size_t occupied_count = 0;
  };

  [[nodiscard]] std::uint64_t fingerprint_of(const Allocation& genome) const;
  /// Records one probed (non-bypassed) evaluate_through outcome and, at
  /// each probe-window boundary, decides whether to start bypassing.
  void note_probe(bool hit);
  /// Records one bypassed evaluation and, at each bypass-window boundary,
  /// resumes probing.
  void note_bypassed();
  [[nodiscard]] std::optional<EUPoint> lookup_at(
      std::uint64_t fp, const Allocation& genome) const;
  void insert_at(std::uint64_t fp, const Allocation& genome,
                 const EUPoint& objectives);
  [[nodiscard]] Shard& shard_for(std::uint64_t fp) const noexcept {
    return shards_[(fp >> 56U) & shard_mask_];
  }

  std::size_t capacity_;
  std::uint64_t slot_mask_;  ///< per-shard slot count - 1 (power of two)
  std::uint64_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  std::function<std::uint64_t(const Allocation&)> fingerprinter_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypasses_{0};
  /// Adaptive-bypass state machine (see FitnessCacheConfig).  The window
  /// counters are approximate under concurrency — a racy double-decision
  /// only shifts a window boundary, never affects results.
  std::size_t probe_window_;
  std::size_t bypass_window_;
  double min_hit_rate_;
  std::atomic<bool> bypassing_{false};
  std::atomic<std::uint64_t> window_events_{0};
  std::atomic<std::uint64_t> window_hits_{0};
  /// Registry handles, resolved once (null when metrics are disabled).
  Counter* metric_hits_ = nullptr;
  Counter* metric_misses_ = nullptr;
  Counter* metric_evictions_ = nullptr;
  Counter* metric_bypasses_ = nullptr;
};

}  // namespace eus
