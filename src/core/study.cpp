#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/study_engine.hpp"

namespace eus {

std::vector<PopulationSpec> paper_population_specs() {
  return {
      {"min-energy seed", 'd', {SeedHeuristic::kMinEnergy}},
      {"min-min seed", 's', {SeedHeuristic::kMinMinCompletionTime}},
      {"max-utility seed", 'o', {SeedHeuristic::kMaxUtility}},
      {"max-utility-per-energy seed",
       '^',
       {SeedHeuristic::kMaxUtilityPerEnergy}},
      {"random", '*', {}},
  };
}

std::vector<PopulationSpec> extended_population_specs() {
  auto specs = paper_population_specs();
  specs.push_back({"all-four-seeds", '4', all_seed_heuristics()});
  return specs;
}

StudyResult run_seeding_study(const BiObjectiveProblem& problem,
                              const Nsga2Config& base_config,
                              const std::vector<std::size_t>& checkpoints,
                              const std::vector<PopulationSpec>& specs,
                              const StudyProgress& progress) {
  // Serial engine: populations run one after another, exactly the legacy
  // behaviour.  Concurrent execution is opt-in via StudyEngine directly.
  StudyEngine engine;
  return engine.run(problem, base_config, checkpoints, specs, progress);
}

std::vector<std::size_t> scaled_checkpoints(
    std::vector<std::size_t> paper_schedule, double scale) {
  if (!(scale > 0.0)) throw std::invalid_argument("scale must be positive");
  std::size_t previous = 0;
  for (auto& c : paper_schedule) {
    const double scaled = std::ceil(static_cast<double>(c) * scale);
    c = static_cast<std::size_t>(std::max(1.0, scaled));
    if (c <= previous) c = previous + 1;  // keep strictly increasing
    previous = c;
  }
  return paper_schedule;
}

}  // namespace eus
