#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eus {

std::vector<PopulationSpec> paper_population_specs() {
  return {
      {"min-energy seed", 'd', {SeedHeuristic::kMinEnergy}},
      {"min-min seed", 's', {SeedHeuristic::kMinMinCompletionTime}},
      {"max-utility seed", 'o', {SeedHeuristic::kMaxUtility}},
      {"max-utility-per-energy seed",
       '^',
       {SeedHeuristic::kMaxUtilityPerEnergy}},
      {"random", '*', {}},
  };
}

std::vector<PopulationSpec> extended_population_specs() {
  auto specs = paper_population_specs();
  specs.push_back({"all-four-seeds", '4', all_seed_heuristics()});
  return specs;
}

StudyResult run_seeding_study(const BiObjectiveProblem& problem,
                              const Nsga2Config& base_config,
                              const std::vector<std::size_t>& checkpoints,
                              const std::vector<PopulationSpec>& specs,
                              const StudyProgress& progress) {
  if (checkpoints.empty()) throw std::invalid_argument("no checkpoints");
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    if (checkpoints[i] <= checkpoints[i - 1]) {
      throw std::invalid_argument("checkpoints must be strictly increasing");
    }
  }

  StudyResult result;
  result.checkpoints = checkpoints;

  for (std::size_t p = 0; p < specs.size(); ++p) {
    const PopulationSpec& spec = specs[p];
    result.population_names.push_back(spec.name);
    result.markers.push_back(spec.marker);

    Nsga2Config config = base_config;
    config.seed = base_config.seed + 0x9e37 * (p + 1);  // independent streams

    std::vector<Allocation> seeds;
    seeds.reserve(spec.seeds.size());
    for (const SeedHeuristic h : spec.seeds) {
      seeds.push_back(make_seed(h, problem.system(), problem.trace()));
    }

    Nsga2 algorithm(problem, config);
    algorithm.initialize(seeds);

    std::vector<std::vector<EUPoint>> fronts;
    std::size_t done = 0;
    for (const std::size_t target : checkpoints) {
      algorithm.iterate(target - done);
      done = target;
      fronts.push_back(algorithm.front_points());
      if (progress) progress(spec.name, done);
    }
    result.fronts.push_back(std::move(fronts));
  }
  return result;
}

std::vector<std::size_t> scaled_checkpoints(
    std::vector<std::size_t> paper_schedule, double scale) {
  if (!(scale > 0.0)) throw std::invalid_argument("scale must be positive");
  std::size_t previous = 0;
  for (auto& c : paper_schedule) {
    const double scaled = std::ceil(static_cast<double>(c) * scale);
    c = static_cast<std::size_t>(std::max(1.0, scaled));
    if (c <= previous) c = previous + 1;  // keep strictly increasing
    previous = c;
  }
  return paper_schedule;
}

}  // namespace eus
