#pragma once

// Scalarized hill climbing on allocations — a refinement layer on top of
// the NSGA-II (a light memetic extension beyond the paper).  Moves are the
// genetic mutation's ingredients applied greedily: relocate one task to
// another eligible machine, or swap two tasks' scheduling orders; a move
// is kept when it improves the weighted objective
//
//   score = lambda * utility / u_scale - (1 - lambda) * energy / e_scale,
//
// so lambda = 1 climbs pure utility, lambda = 0 descends pure energy, and
// intermediate values polish interior front points.  Scales default to the
// start point's own objectives so lambda is meaningful regardless of units.

#include <cstddef>

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace eus {

struct LocalSearchResult {
  Allocation allocation;
  EUPoint objectives;
  std::size_t evaluations = 0;  ///< fitness calls consumed
  std::size_t improvements = 0;
};

struct LocalSearchOptions {
  /// Trade-off direction in [0, 1] (1 = utility, 0 = energy).
  double lambda = 0.5;
  /// Fitness-evaluation budget (each proposed move costs one).
  std::size_t max_evaluations = 200;
  /// Give up after this many consecutive rejected moves.
  std::size_t patience = 50;
};

/// First-improvement stochastic hill climbing from `start`.  Deterministic
/// given `rng`'s state.  Throws std::invalid_argument on bad options or a
/// start allocation that does not fit the problem.
[[nodiscard]] LocalSearchResult local_search(const BiObjectiveProblem& problem,
                                             Allocation start,
                                             const LocalSearchOptions& options,
                                             Rng& rng);

/// Polishes every point of a front (e.g. an Nsga2 rank-0 set): runs
/// local_search on each with lambda spread evenly from 0 to 1 across the
/// (energy-ascending) members, and returns the nondominated union of
/// originals and polished results.
[[nodiscard]] std::vector<LocalSearchResult> polish_front(
    const BiObjectiveProblem& problem, const std::vector<Allocation>& front,
    std::size_t evaluations_each, Rng& rng);

}  // namespace eus
