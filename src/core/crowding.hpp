#pragma once

// Crowding distance (Deb et al. 2002): rewards solutions in sparse regions
// of the objective space so the truncation step keeps an evenly spaced
// front (§IV-D's "more equally spaced Pareto front").

#include <cstddef>
#include <vector>

#include "pareto/point.hpp"

namespace eus {

/// Crowding distance of each member of one front.  `front` holds indices
/// into `points`; the result is aligned with `front`.  Boundary members
/// (extreme in either objective) get +infinity.  Fronts of <= 2 members are
/// all-infinite.
[[nodiscard]] std::vector<double> crowding_distances(
    const std::vector<EUPoint>& points, const std::vector<std::size_t>& front);

}  // namespace eus
