#include "core/study_engine.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace eus {

StudyEngine::StudyEngine(StudyEngineConfig config)
    : config_(std::move(config)) {
  if (config_.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
}

StudyEngine::~StudyEngine() = default;

StudyResult StudyEngine::run(const BiObjectiveProblem& problem,
                             const Nsga2Config& base_config,
                             const std::vector<std::size_t>& checkpoints,
                             const std::vector<PopulationSpec>& specs,
                             const StudyProgress& progress) {
  if (checkpoints.empty()) throw std::invalid_argument("no checkpoints");
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    if (checkpoints[i] <= checkpoints[i - 1]) {
      throw std::invalid_argument("checkpoints must be strictly increasing");
    }
  }
  if (specs.empty()) throw std::invalid_argument("no population specs");

  StudyResult result;
  result.checkpoints = checkpoints;
  result.fronts.resize(specs.size());

  // Seeds are built up front, serially: deterministic, and the greedy
  // constructions are pure reads of the shared problem — so each heuristic
  // is built once and copied into every spec that lists it (the combined
  // spec repeats every single-heuristic spec's seed).
  std::map<SeedHeuristic, Allocation> seed_memo;
  std::vector<std::vector<Allocation>> seeds(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    result.population_names.push_back(specs[p].name);
    result.markers.push_back(specs[p].marker);
    seeds[p].reserve(specs[p].seeds.size());
    for (const SeedHeuristic h : specs[p].seeds) {
      auto it = seed_memo.find(h);
      if (it == seed_memo.end()) {
        it = seed_memo
                 .emplace(h,
                          make_seed(h, problem.system(), problem.trace()))
                 .first;
      }
      seeds[p].push_back(it->second);
    }
  }

  if (config_.recorder != nullptr) {
    RunInfo info;
    info.study = config_.study_label;
    info.seed = base_config.seed;
    info.population_size = base_config.population_size;
    info.threads = threads();
    info.mutation_probability = base_config.mutation_probability;
    info.checkpoints = checkpoints;
    info.populations = result.population_names;
    config_.recorder->record_config(info);
  }

  Stopwatch timer;
  std::mutex progress_mutex;

  const auto run_population = [&](std::size_t p) {
    Nsga2Config config = base_config;
    config.seed =
        base_config.seed + kPopulationSeedStride * (p + 1);  // own stream
    if (pool_) {
      // Nested parallelism: evaluation batches share the engine's pool.
      config.shared_pool = pool_.get();
    }
    if (config_.metrics != nullptr) config.metrics = config_.metrics;
    if (config_.cache != nullptr) config.cache = config_.cache;

    Nsga2 algorithm(problem, config);
    algorithm.initialize(seeds[p]);

    std::vector<std::vector<EUPoint>>& fronts = result.fronts[p];
    fronts.reserve(checkpoints.size());
    std::size_t done = 0;
    for (const std::size_t target : checkpoints) {
      algorithm.iterate(target - done);
      done = target;
      fronts.push_back(algorithm.front_points());
      if (config_.recorder != nullptr) {
        config_.recorder->record_checkpoint(specs[p].name, done,
                                            fronts.back(), timer.seconds());
      }
      if (progress) {
        const std::lock_guard lock(progress_mutex);
        progress(specs[p].name, done);
      }
    }
  };

  if (pool_) {
    pool_->parallel_for(specs.size(), run_population);
  } else {
    for (std::size_t p = 0; p < specs.size(); ++p) run_population(p);
  }

  if (config_.recorder != nullptr) {
    config_.recorder->record_summary(
        timer.seconds(),
        config_.metrics ? config_.metrics->snapshot() : MetricsSnapshot{});
  }
  return result;
}

}  // namespace eus
