#pragma once

// The adapted NSGA-II of §IV-D / Algorithm 1:
//
//   1. start from a population of N chromosomes (optionally seeded with
//      greedy-heuristic allocations, §V-B);
//   2. each generation: N/2 uniformly-paired crossovers produce N
//      offspring, each offspring mutates with a configured probability;
//   3. parents + offspring merge into a 2N meta-population, which is
//      nondominated-sorted; whole ranks fill the next parent population and
//      the cut rank is truncated by crowding distance (elitism for free).
//
// Population evaluation is embarrassingly parallel and optionally runs on a
// thread pool.  Everything is deterministic for a fixed seed and thread
// count (offspring are generated serially; only fitness evaluation — a
// pure function — is parallel).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fitness_cache.hpp"
#include "core/problem.hpp"
#include "sched/allocation.hpp"
#include "sched/eval_state.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace eus {

/// How crossover parents are picked from the population.
enum class SelectionMode {
  /// The paper's §IV-D choice: two distinct chromosomes uniformly at
  /// random.
  kUniform,
  /// Deb's original NSGA-II binary tournament by crowded comparison
  /// (lower rank wins; ties broken by larger crowding distance).
  kCrowdedTournament,
};

struct Nsga2Config {
  /// N: chromosomes per population (must be even and >= 2; paper uses 100).
  std::size_t population_size = 100;
  /// Parent selection (paper default; see bench_ablation_selection).
  SelectionMode selection = SelectionMode::kUniform;
  /// Probability that a fresh offspring is mutated ("selected by
  /// experimentation" in the paper; see bench_ablation_mutation).
  double mutation_probability = 0.25;
  /// Encoding ablation: restore order genes to a strict 0..T-1 permutation
  /// after every crossover/mutation (see DESIGN.md).
  bool repair_order_permutation = false;
  /// Disable the crowding-distance truncation (ablation): the cut rank is
  /// then truncated in ascending-energy order instead.
  bool use_crowding = true;
  /// Worker threads for fitness evaluation; 0 = hardware concurrency,
  /// 1 = evaluate inline (no pool).  Ignored when `shared_pool` is set.
  std::size_t threads = 1;
  /// Externally owned pool shared across algorithm instances (e.g. the
  /// StudyEngine's, which also runs whole populations on it — the pool's
  /// parallel_for supports such nesting).  Must outlive the algorithm.
  /// Scheduling only: results stay bit-identical for a fixed seed.
  ThreadPool* shared_pool = nullptr;
  /// Optional telemetry sink (must outlive the algorithm).  Counters and
  /// timers aggregate across every instance sharing the registry.
  MetricsRegistry* metrics = nullptr;
  /// Optional fitness memo (must outlive the algorithm).  Clone offspring
  /// and carried-over seeds skip the simulator entirely; evaluation is a
  /// pure function of the genome, so fronts stay bit-identical with the
  /// cache present or absent.  Thread-safe — share one across a study's
  /// concurrently evolving populations (see StudyEngineConfig::cache).
  FitnessCache* cache = nullptr;
  std::uint64_t seed = 1;
};

struct Individual {
  Allocation genome;
  EUPoint objectives;
  std::size_t rank = 0;     ///< 0 == nondominated
  double crowding = 0.0;
  /// Per-machine simulation partials backing the incremental
  /// delta-evaluator (empty when the individual's objectives came from a
  /// cache hit or a problem without an Evaluator).  Offspring whose
  /// operators touched few genes re-simulate only the dirty machines of
  /// their parent's state; fronts are bit-identical either way.
  EvalState state;
};

/// Observer invoked after every generation with (generation number, the
/// freshly selected parent population).  Must not outlive its captures; the
/// population reference is only valid during the call.
using GenerationObserver =
    std::function<void(std::size_t, const std::vector<Individual>&)>;

/// Deb's crowded-comparison binary tournament between candidates `a` and
/// `b` (indices into `population`): lower rank wins; equal ranks prefer
/// the larger crowding distance; an *exact* crowding tie is broken by a
/// fair coin flip from `rng` (historically the first candidate always won,
/// deterministically biasing selection toward earlier draws).
[[nodiscard]] std::size_t crowded_tournament_winner(
    const std::vector<Individual>& population, std::size_t a, std::size_t b,
    Rng& rng);

class Nsga2 {
 public:
  /// The problem must outlive the algorithm.  Throws on invalid config.
  Nsga2(const BiObjectiveProblem& problem, Nsga2Config config);
  ~Nsga2();

  Nsga2(const Nsga2&) = delete;
  Nsga2& operator=(const Nsga2&) = delete;

  /// Builds the initial population: the given seed chromosomes first (must
  /// fit within N and match the genome size), the rest uniformly random.
  /// Must be called exactly once before iterate().
  void initialize(const std::vector<Allocation>& seeds);

  /// Warm-started initialization: `seeds` are first-class (same contract as
  /// initialize()), then as many `warm` genomes as still fit are injected
  /// — archived fronts from a previous converged run — and the remainder is
  /// filled uniformly at random exactly as a cold start would.  Overflowing
  /// warm genomes are dropped (lowest-index kept).  Bumps the
  /// `nsga2.warm_seeds` counter by the number injected.
  void initialize_warm(const std::vector<Allocation>& seeds,
                       const std::vector<Allocation>& warm);

  /// Runs `generations` generations (Algorithm 1 steps 3-11, repeated).
  void iterate(std::size_t generations);

  /// Installs (or clears, with nullptr) the per-generation observer —
  /// convergence trackers, archives, live plots.
  void set_observer(GenerationObserver observer) {
    observer_ = std::move(observer);
  }

  /// Current parent population, rank/crowding annotations up to date.
  [[nodiscard]] const std::vector<Individual>& population() const noexcept {
    return population_;
  }

  /// The current rank-0 individuals (the evolving Pareto set), ascending
  /// energy.
  [[nodiscard]] std::vector<Individual> front() const;

  /// Just the rank-0 objective points, ascending energy.
  [[nodiscard]] std::vector<EUPoint> front_points() const;

  [[nodiscard]] std::size_t generation() const noexcept { return generation_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] const Nsga2Config& config() const noexcept { return config_; }

 private:
  /// Delta-evaluation lineage of one offspring: which parent it was cloned
  /// from and which genes the operators actually changed (post-filtering —
  /// segment swaps between similar parents copy mostly-equal genes).
  /// `full` forces a from-scratch simulation (order repair rewrites every
  /// order gene, and zero-size populations have nothing to track).
  struct OffspringHint {
    std::uint32_t parent = 0;
    bool full = true;
    std::vector<std::uint32_t> touched;
  };

  /// Evaluates individuals[begin..] in parallel.  With `trusted_genomes`
  /// the genomes are known structurally valid (operator-built, or user
  /// seeds validated up front in initialize()), so hint-less evaluations
  /// skip the per-gene validation pass.
  void evaluate_all(std::vector<Individual>& individuals, std::size_t begin,
                    const std::vector<OffspringHint>* hints,
                    bool trusted_genomes = false);
  /// Evaluates individuals[idx] in place (cache → clone → delta → full,
  /// whichever wins; see the definition).  The unit evaluate_all() fans
  /// out, and the one inline_evaluation() calls per fresh genome.
  void evaluate_individual(std::vector<Individual>& individuals,
                           std::size_t idx, const OffspringHint* hint,
                           bool trusted_genome);
  /// Whether evaluation runs serially anyway (no pool, or a single-worker
  /// pool) — in which case each fresh genome is evaluated right after the
  /// operators build it, while it is still cache-hot.
  [[nodiscard]] bool inline_evaluation() const noexcept;
  void annotate_and_select(std::vector<Individual>& meta);

  const BiObjectiveProblem* problem_;
  Nsga2Config config_;
  Rng rng_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when shared or serial
  ThreadPool* eval_pool_ = nullptr;         ///< null when evaluating inline
  /// Metric handles, resolved once at construction (null when disabled).
  Counter* metric_evaluations_ = nullptr;
  Counter* metric_generations_ = nullptr;
  Gauge* metric_front_size_ = nullptr;
  TimerMetric* timer_variation_ = nullptr;
  TimerMetric* timer_evaluation_ = nullptr;
  TimerMetric* timer_selection_ = nullptr;
  std::vector<Individual> population_;
  /// Per-generation offspring lineage, reused to avoid reallocation.
  std::vector<OffspringHint> hints_;
  GenerationObserver observer_;
  std::size_t generation_ = 0;
  std::uint64_t evaluations_ = 0;
  bool initialized_ = false;
};

}  // namespace eus
