#pragma once

// The study executor behind every figure bench: evolves all populations of
// a seeding study *concurrently* on one shared ThreadPool.  Populations are
// top-level pool tasks; each population's per-generation fitness-evaluation
// batch fans out as nested tasks on the same pool (parallel_for's
// work-helping makes the nesting deadlock-free).
//
// Scheduling refactor only: every population owns an independent RNG stream
// (seed perturbed per population, exactly as the serial harness always did)
// and fitness evaluation is pure, so results are bit-identical to the
// serial path for a fixed seed, at any thread count.
//
// Optional observability: a shared MetricsRegistry aggregates counters and
// phase timers across populations, and a RunRecorder emits a JSONL record
// per (population, checkpoint) plus config/summary lines.

#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_recorder.hpp"
#include "util/thread_pool.hpp"

namespace eus {

/// Per-population seed perturbation: population p evolves with
/// base_seed + kPopulationSeedStride * (p + 1), giving every population an
/// independent RNG stream.  Exposed so other drivers (eus_served's nsga2
/// handler) can reproduce a StudyEngine population bit-for-bit.
inline constexpr std::uint64_t kPopulationSeedStride = 0x9e37;

struct StudyEngineConfig {
  /// Shared pool size: 0 = hardware concurrency, 1 = fully serial (no pool,
  /// the legacy run_seeding_study path), n > 1 = n workers.
  std::size_t threads = 1;
  /// Optional shared metrics sink, threaded into every Nsga2 instance and
  /// snapshotted into the run record's summary.  Must outlive the engine.
  MetricsRegistry* metrics = nullptr;
  /// Optional JSONL run recorder.  Must outlive the engine.
  RunRecorder* recorder = nullptr;
  /// Optional fitness memo shared by every population of the study (the
  /// cache is sharded + thread-safe; fronts are bit-identical with or
  /// without it).  Must outlive the engine's run() calls.
  FitnessCache* cache = nullptr;
  /// Label written into the recorder's config record.
  std::string study_label = "seeding-study";
};

class StudyEngine {
 public:
  explicit StudyEngine(StudyEngineConfig config = {});
  ~StudyEngine();

  StudyEngine(const StudyEngine&) = delete;
  StudyEngine& operator=(const StudyEngine&) = delete;

  /// Runs every population through the checkpoint schedule (see
  /// run_seeding_study for the semantics).  Checkpoints must be non-empty
  /// and strictly increasing; specs must be non-empty.  Progress callbacks
  /// are serialized but arrive interleaved across populations when running
  /// concurrently; result ordering matches `specs` regardless.
  [[nodiscard]] StudyResult run(const BiObjectiveProblem& problem,
                                const Nsga2Config& base_config,
                                const std::vector<std::size_t>& checkpoints,
                                const std::vector<PopulationSpec>& specs,
                                const StudyProgress& progress = {});

  /// Resolved worker count (1 when serial).
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

 private:
  StudyEngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
};

}  // namespace eus
