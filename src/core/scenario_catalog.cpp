#include "core/scenario_catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace eus {

namespace {

[[noreturn]] void reject(const std::string& reason) {
  throw std::invalid_argument("scenario catalog: " + reason);
}

void validate(const ScenarioRecipe& recipe) {
  if (recipe.name.empty()) reject("alias name must be non-empty");
  if (ScenarioCatalog::is_builtin_name(recipe.name)) {
    reject("alias '" + recipe.name +
           "' shadows a built-in scenario name (built-ins are immutable)");
  }
  const bool known_base =
      recipe.base == "dataset1" || recipe.base == "dataset2" ||
      recipe.base == "dataset3" || recipe.base == "custom";
  if (!known_base) {
    reject("alias '" + recipe.name + "' has unknown base '" + recipe.base +
           "' (want dataset1|dataset2|dataset3|custom)");
  }
  if (recipe.base == "custom") {
    if (recipe.tasks < 1) {
      reject("alias '" + recipe.name + "' needs tasks >= 1");
    }
    if (!(recipe.window_s > 0.0) || !std::isfinite(recipe.window_s)) {
      reject("alias '" + recipe.name +
             "' needs a positive finite window_s");
    }
  }
}

}  // namespace

ScenarioCatalog::ScenarioCatalog(std::vector<ScenarioRecipe> recipes)
    : recipes_(std::move(recipes)) {
  for (const ScenarioRecipe& recipe : recipes_) validate(recipe);
  std::sort(recipes_.begin(), recipes_.end(),
            [](const ScenarioRecipe& a, const ScenarioRecipe& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < recipes_.size(); ++i) {
    if (recipes_[i - 1].name == recipes_[i].name) {
      reject("duplicate alias '" + recipes_[i].name + "'");
    }
  }
}

const ScenarioRecipe* ScenarioCatalog::find(std::string_view alias) const {
  const auto it = std::lower_bound(
      recipes_.begin(), recipes_.end(), alias,
      [](const ScenarioRecipe& r, std::string_view key) {
        return r.name < key;
      });
  if (it == recipes_.end() || it->name != alias) return nullptr;
  return &*it;
}

bool ScenarioCatalog::is_builtin_name(std::string_view name) noexcept {
  return name == "dataset1" || name == "dataset2" || name == "dataset3" ||
         name == "custom" || name == "inline";
}

std::uint64_t SharedCatalog::swap(
    std::shared_ptr<const ScenarioCatalog> next) {
  if (next == nullptr) next = std::make_shared<const ScenarioCatalog>();
  const std::lock_guard lock(mutex_);
  current_ = std::move(next);
  return ++generation_;
}

}  // namespace eus
