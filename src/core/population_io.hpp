#pragma once

// Population checkpointing: persist the N genomes of an NSGA-II run and
// resume later (objectives are recomputed on load — they are pure
// functions of the genome, so nothing else needs saving).  Resuming is
// just Nsga2::initialize(loaded) with population_size == loaded.size().
//
// Format: one "[genome <k>]" header per member, each followed by the
// allocation CSV of sched/allocation_io.hpp.

#include <string>
#include <vector>

#include "sched/allocation.hpp"

namespace eus {

/// Serializes the genomes in order.
[[nodiscard]] std::string population_to_string(
    const std::vector<Allocation>& genomes);

/// Parses population_to_string output; throws std::runtime_error on
/// malformed input (missing/misnumbered headers, bad allocation blocks,
/// inconsistent genome sizes).
[[nodiscard]] std::vector<Allocation> population_from_string(
    const std::string& text);

}  // namespace eus
