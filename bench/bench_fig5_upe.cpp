// Figure 5: locating the maximum utility-per-energy region.  Subplot A is
// the final Pareto front of the max-utility-per-energy-seeded population on
// dataset 2; subplot B plots utility/energy vs utility; subplot C plots
// utility/energy vs energy.  The shared peak of B and C identifies the
// circled region on A.

#include <algorithm>

#include "common.hpp"

EUS_BENCHMARK(fig5_upe, "Figure 5 utility-per-energy region method (subplots A/B/C)") {
  using namespace eus;

  const double scale = 0.005 * bench_scale();
  const std::size_t iterations =
      scaled_checkpoints({1000000}, scale).front();

  const Scenario scenario = make_dataset2(bench_seed());
  std::cout << "== Figure 5 — utility-per-energy analysis ("
            << scenario.name << ") ==\n"
            << "evolving the max-utility-per-energy-seeded population for "
            << iterations << " iterations (EUS_SCALE rescales)...\n";

  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
  ga.initialize({max_utility_per_energy_allocation(scenario.system,
                                                   scenario.trace)});
  Stopwatch timer;
  ga.iterate(iterations);
  std::cout << "done in " << timer.seconds() << " s\n";

  const auto front = ga.front_points();
  const KneeAnalysis knee = analyze_utility_per_energy(front);

  // Subplot A: the front, with the efficient region marked.
  std::vector<PlotSeries> a_series;
  PlotSeries front_series{"Pareto front", '*', {}, {}};
  PlotSeries region_series{"max utility-per-energy region", 'O', {}, {}};
  for (std::size_t i = 0; i < knee.front.size(); ++i) {
    front_series.x.push_back(knee.front[i].energy / 1e6);
    front_series.y.push_back(knee.front[i].utility);
  }
  for (const std::size_t i : knee.region) {
    region_series.x.push_back(knee.front[i].energy / 1e6);
    region_series.y.push_back(knee.front[i].utility);
  }
  a_series.push_back(std::move(front_series));
  a_series.push_back(std::move(region_series));
  PlotOptions a_opts;
  a_opts.title = "\nsubplot A — Pareto front with circled region";
  a_opts.x_label = "energy (MJ)";
  a_opts.y_label = "utility";
  std::cout << render_scatter(a_series, a_opts);

  // Subplot B: utility-per-energy vs utility.
  PlotSeries b{"U/E vs utility", '*', {}, {}};
  for (std::size_t i = 0; i < knee.front.size(); ++i) {
    b.x.push_back(knee.front[i].utility);
    b.y.push_back(knee.ratio[i] * 1e6);
  }
  PlotOptions b_opts;
  b_opts.title = "\nsubplot B — utility earned per energy spent vs utility";
  b_opts.x_label = "utility";
  b_opts.y_label = "utility per MJ";
  std::cout << render_scatter({b}, b_opts);

  // Subplot C: utility-per-energy vs energy.
  PlotSeries c{"U/E vs energy", '*', {}, {}};
  for (std::size_t i = 0; i < knee.front.size(); ++i) {
    c.x.push_back(knee.front[i].energy / 1e6);
    c.y.push_back(knee.ratio[i] * 1e6);
  }
  PlotOptions c_opts;
  c_opts.title = "\nsubplot C — utility earned per energy spent vs energy";
  c_opts.x_label = "energy (MJ)";
  c_opts.y_label = "utility per MJ";
  std::cout << render_scatter({c}, c_opts);

  std::cout << "\npeak utility-per-energy: " << knee.peak_ratio * 1e6
            << " utility/MJ\n"
            << "solid-line (subplot B) utility value:  " << knee.peak.utility
            << '\n'
            << "dashed-line (subplot C) energy value:  "
            << knee.peak.energy / 1e6 << " MJ\n"
            << "region size (within 2% of peak): " << knee.region.size()
            << " allocations\n";

  std::cout << "\nCSV energy_J,utility,utility_per_J,in_region\n";
  CsvWriter csv(std::cout);
  for (std::size_t i = 0; i < knee.front.size(); ++i) {
    const bool in_region =
        std::find(knee.region.begin(), knee.region.end(), i) !=
        knee.region.end();
    csv.write_row({format_double(knee.front[i].energy, 1),
                   format_double(knee.front[i].utility, 3),
                   format_double(knee.ratio[i], 9),
                   in_region ? "1" : "0"});
  }
  std::cout << "END CSV\n";
  return 0;
}
