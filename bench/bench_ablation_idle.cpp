// Idle-power ablation (beyond the paper): the paper's energy model (Eq. 3)
// bills busy energy only, so minimizing energy never cares how many
// machines are powered or how long they sit waiting.  Real suites draw
// idle power; this bench adds per-type idle wattage (as a fraction of each
// type's mean busy power) and shows how the front and the min-energy
// allocation's structure change.

#include <iostream>
#include <set>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_idle, "idle-power billing vs the paper's busy-only Eq. (3)") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const SystemModel& sys = scenario.system;

  std::cout << "== idle-power ablation (dataset 1, " << generations
            << " generations each) ==\n";

  // Idle watts per machine type = fraction x that type's mean busy power.
  const auto idle_table = [&](double fraction) {
    std::vector<double> watts(sys.num_machine_types(), 0.0);
    for (std::size_t ty = 0; ty < sys.num_machine_types(); ++ty) {
      double mean = 0.0;
      std::size_t n = 0;
      for (std::size_t t = 0; t < sys.num_task_types(); ++t) {
        if (sys.eligible_type(t, ty)) {
          mean += sys.epc()(t, ty);
          ++n;
        }
      }
      watts[ty] = fraction * mean / static_cast<double>(n);
    }
    return watts;
  };

  AsciiTable table({"idle power", "min energy (MJ)", "machines @ floor",
                    "max utility", "idle share @ max-utility",
                    "machines @ max-utility"});
  for (const double fraction : {0.0, 0.2, 0.4}) {
    EvaluatorOptions opts;
    if (fraction > 0.0) opts.idle_watts = idle_table(fraction);
    const UtilityEnergyProblem problem(scenario.system, scenario.trace, opts);

    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                   min_min_completion_time_allocation(scenario.system,
                                                      scenario.trace)});
    ga.iterate(generations);

    const auto front = ga.front();
    const Individual& floor = front.front();
    const Individual& top = front.back();
    const Evaluation top_detail = problem.evaluator().evaluate(top.genome);
    std::set<int> floor_used(floor.genome.machine.begin(),
                             floor.genome.machine.end());
    std::set<int> top_used(top.genome.machine.begin(),
                           top.genome.machine.end());
    table.add_row(
        {fraction == 0.0 ? "none (paper model)"
                         : format_double(100.0 * fraction, 0) + "% of busy",
         format_double(floor.objectives.energy / 1e6, 3),
         std::to_string(floor_used.size()),
         format_double(top.objectives.utility, 1),
         format_double(100.0 * top_detail.idle_energy /
                           std::max(top_detail.energy, 1e-9),
                       1) +
             "%",
         std::to_string(top_used.size())});
  }
  std::cout << table.render()
            << "\nExpected shape: the min-energy floor barely moves (its "
               "back-to-back queues\non the two cheapest machines have no "
               "gaps to bill), but the utility end —\nwhich spreads work "
               "across the whole suite with arrival-wait gaps — now\npays "
               "an idle surcharge, squeezing the front from the right and "
               "lowering\nachievable utility per joule.\n";
  return 0;
}
