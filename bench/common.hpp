#pragma once

// Shared harness glue for the figure benches: runs a seeding study over a
// scenario, prints progress, renders each checkpoint's fronts as an ASCII
// scatter (the paper's subplots), and emits machine-readable CSV blocks
// (population, iterations, energy_J, utility) for external plotting.
//
// Iteration schedules are the paper's, scaled by a per-bench default times
// the EUS_SCALE environment knob (EXPERIMENTS.md documents the scaling).

#include <iostream>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "pareto/knee.hpp"
#include "pareto/metrics.hpp"
#include "sched/bounds.hpp"
#include "util/ascii_plot.hpp"
#include "workload/analysis.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/stopwatch.hpp"
#include "workload/scenarios.hpp"

namespace eus::bench {

struct FigureSpec {
  std::string figure;                    ///< e.g. "Figure 3"
  std::vector<std::size_t> paper_iters;  ///< the paper's checkpoint schedule
  double default_scale = 1.0;           ///< per-bench shrink factor
  std::size_t population = 100;         ///< paper's N
};

inline Nsga2Config figure_config(std::uint64_t seed, std::size_t population) {
  Nsga2Config config;
  config.population_size = population;
  config.mutation_probability = 0.25;
  config.seed = seed;
  return config;
}

/// Runs the five-population study for one scenario and prints everything.
inline StudyResult run_figure(const FigureSpec& spec,
                              const Scenario& scenario) {
  const double scale = spec.default_scale * bench_scale();
  const auto checkpoints = scaled_checkpoints(spec.paper_iters, scale);

  std::cout << "== " << spec.figure << " — " << scenario.name << " ==\n"
            << "tasks: " << scenario.trace.size()
            << ", machines: " << scenario.system.num_machines()
            << ", window: " << scenario.window_seconds << " s\n"
            << "paper iterations: ";
  for (const auto c : spec.paper_iters) std::cout << c << ' ';
  std::cout << "-> scaled (x" << scale << "): ";
  for (const auto c : checkpoints) std::cout << c << ' ';
  std::cout << "(set EUS_SCALE to rescale)\n";

  const WorkloadAnalysis load =
      analyze_workload(scenario.system, scenario.trace);
  const ObjectiveBounds bounds =
      compute_bounds(scenario.system, scenario.trace);
  std::cout << "offered load: " << format_double(load.offered_load, 2)
            << "x capacity; bounds: energy >= "
            << format_double(bounds.energy_lower / 1e6, 3)
            << " MJ, utility <= "
            << format_double(bounds.utility_upper_contention_free, 1)
            << " (contention-free)\n";

  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  Stopwatch timer;
  const StudyResult study = run_seeding_study(
      problem, figure_config(bench_seed(), spec.population), checkpoints,
      paper_population_specs(), [&](const std::string& name, std::size_t it) {
        std::cout << "  [" << timer.seconds() << "s] " << name << " @ " << it
                  << " iterations\n";
      });

  // One subplot per checkpoint, all five populations overlaid.
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    std::vector<PlotSeries> series;
    for (std::size_t p = 0; p < study.population_names.size(); ++p) {
      PlotSeries s{study.population_names[p], study.markers[p], {}, {}};
      for (const auto& pt : study.fronts[p][c]) {
        s.x.push_back(pt.energy / 1e6);
        s.y.push_back(pt.utility);
      }
      series.push_back(std::move(s));
    }
    PlotOptions opts;
    opts.title = "\n" + spec.figure + " subplot — fronts through " +
                 std::to_string(checkpoints[c]) + " iterations";
    opts.x_label = "total energy consumed (MJ)";
    opts.y_label = "total utility earned";
    std::cout << render_scatter(series, opts);
  }

  // The circled region (max utility-per-energy) on the final fronts.
  std::cout << "\nmost-efficient region per population (final checkpoint):\n";
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    const KneeAnalysis knee =
        analyze_utility_per_energy(study.final_front(p));
    std::cout << "  " << study.population_names[p] << ": peak "
              << knee.peak_ratio * 1e6 << " utility/MJ at "
              << knee.peak.energy / 1e6 << " MJ, " << knee.peak.utility
              << " utility\n";
  }

  // Bound attainment at the final checkpoint.
  std::cout << "\nutility-bound attainment @ final checkpoint:\n";
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    const auto& front = study.final_front(p);
    std::cout << "  " << study.population_names[p] << ": "
              << format_double(100.0 * front.back().utility /
                                   bounds.utility_upper_contention_free,
                               1)
              << "% of bound, energy floor "
              << format_double(front.front().energy / bounds.energy_lower, 3)
              << "x optimal\n";
  }

  // Convergence summary: hypervolume per population per checkpoint.
  std::vector<std::vector<EUPoint>> all;
  for (const auto& per_pop : study.fronts) {
    for (const auto& f : per_pop) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);
  std::cout << "\nhypervolume (normalized to best final):\n";
  double best_final = 0.0;
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    best_final =
        std::max(best_final, hypervolume(study.final_front(p), ref));
  }
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    std::cout << "  " << study.population_names[p] << ":";
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      std::cout << ' '
                << format_double(
                       hypervolume(study.fronts[p][c], ref) / best_final, 3);
    }
    std::cout << '\n';
  }

  // Machine-readable block.
  std::cout << "\nCSV population,iterations,energy_J,utility\n";
  CsvWriter csv(std::cout);
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      for (const auto& pt : study.fronts[p][c]) {
        csv.write_row({study.population_names[p],
                       std::to_string(checkpoints[c]),
                       format_double(pt.energy, 1),
                       format_double(pt.utility, 3)});
      }
    }
  }
  std::cout << "END CSV\ntotal wall time: " << timer.seconds() << " s\n";
  return study;
}

}  // namespace eus::bench
