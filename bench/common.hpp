#pragma once

// Shared harness glue for the figure benches: runs a seeding study over a
// scenario, prints progress, renders each checkpoint's fronts as an ASCII
// scatter (the paper's subplots), and emits machine-readable CSV blocks
// (population, iterations, energy_J, utility) for external plotting, plus a
// JSONL run record (config, per-checkpoint fronts, metric snapshots — see
// EXPERIMENTS.md for the schema).
//
// Iteration schedules are the paper's, scaled by a per-bench default times
// the EUS_SCALE environment knob (EXPERIMENTS.md documents the scaling).
// All populations evolve concurrently on a shared pool sized by
// EUS_THREADS (0 = hardware concurrency, the default; 1 = serial).  The
// fronts are bit-identical at any thread count.

#include <cctype>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "benchkit/registry.hpp"
#include "core/fitness_cache.hpp"
#include "core/study.hpp"
#include "core/study_engine.hpp"
#include "pareto/knee.hpp"
#include "pareto/metrics.hpp"
#include "sched/bounds.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_recorder.hpp"
#include "util/ascii_plot.hpp"
#include "workload/analysis.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/stopwatch.hpp"
#include "workload/scenarios.hpp"

namespace eus::bench {

struct FigureSpec {
  std::string figure;                    ///< e.g. "Figure 3"
  std::vector<std::size_t> paper_iters;  ///< the paper's checkpoint schedule
  double default_scale = 1.0;           ///< per-bench shrink factor
  std::size_t population = 100;         ///< paper's N
};

inline Nsga2Config figure_config(std::uint64_t seed, std::size_t population) {
  Nsga2Config config;
  config.population_size = population;
  config.mutation_probability = 0.25;
  // Nested evaluation parallelism for benches that drive Nsga2 directly;
  // run_figure's StudyEngine overrides this with its shared pool.
  config.threads = bench_threads();
  config.seed = seed;
  return config;
}

/// "Figure 3" + "dataset 1" -> "figure_3_dataset_1".
inline std::string run_slug(const std::string& figure,
                            const std::string& scenario) {
  std::string slug;
  for (const std::string* part : {&figure, &scenario}) {
    if (!slug.empty() && slug.back() != '_') slug += '_';
    for (const char c : *part) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      } else if (!slug.empty() && slug.back() != '_') {
        slug += '_';
      }
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// The JSONL run-record sink: EUS_RUNLOG=off disables, EUS_RUNLOG=<path>
/// overrides, default is <slug>.jsonl in the working directory.
inline std::unique_ptr<RunRecorder> open_run_recorder(
    const std::string& path) {
  if (path == "off" || path == "none") return nullptr;
  try {
    return std::make_unique<RunRecorder>(path);
  } catch (const std::exception& e) {
    std::cerr << "warning: run record disabled (" << e.what() << ")\n";
    return nullptr;
  }
}

/// Runs the five-population study for one scenario and prints everything.
/// Metrics route through the harness's per-scenario registry (`ctx`), so
/// eus_bench snapshots evaluation/cache/pool counters around every timed
/// repetition; a null ctx.metrics (standalone use) gets a local registry.
inline StudyResult run_figure(const benchkit::ScenarioContext& ctx,
                              const FigureSpec& spec,
                              const Scenario& scenario) {
  const double scale = spec.default_scale * bench_scale();
  const auto checkpoints = scaled_checkpoints(spec.paper_iters, scale);

  std::cout << "== " << spec.figure << " — " << scenario.name << " ==\n"
            << "tasks: " << scenario.trace.size()
            << ", machines: " << scenario.system.num_machines()
            << ", window: " << scenario.window_seconds << " s\n"
            << "paper iterations: ";
  for (const auto c : spec.paper_iters) std::cout << c << ' ';
  std::cout << "-> scaled (x" << scale << "): ";
  for (const auto c : checkpoints) std::cout << c << ' ';
  std::cout << "(set EUS_SCALE to rescale)\n";

  const WorkloadAnalysis load =
      analyze_workload(scenario.system, scenario.trace);
  const ObjectiveBounds bounds =
      compute_bounds(scenario.system, scenario.trace);
  std::cout << "offered load: " << format_double(load.offered_load, 2)
            << "x capacity; bounds: energy >= "
            << format_double(bounds.energy_lower / 1e6, 3)
            << " MJ, utility <= "
            << format_double(bounds.utility_upper_contention_free, 1)
            << " (contention-free)\n";

  MetricsRegistry local_metrics;
  MetricsRegistry& metrics =
      ctx.metrics != nullptr ? *ctx.metrics : local_metrics;

  EvaluatorOptions evaluator_options;
  evaluator_options.metrics = &metrics;  // evaluator.* counters in snapshots
  const UtilityEnergyProblem problem(scenario.system, scenario.trace,
                                     std::move(evaluator_options));
  const std::string run_path =
      env_string("EUS_RUNLOG")
          .value_or(run_slug(spec.figure, scenario.name) + ".jsonl");
  const std::unique_ptr<RunRecorder> recorder = open_run_recorder(run_path);

  // Fitness memo shared by all five populations (EUS_CACHE sizes it;
  // "off" disables).  Hits skip the simulator; fronts are bit-identical.
  std::unique_ptr<FitnessCache> cache;
  if (const std::size_t cache_capacity = bench_cache_capacity();
      cache_capacity > 0) {
    FitnessCacheConfig cache_config;
    cache_config.capacity = cache_capacity;
    cache_config.metrics = &metrics;
    cache = std::make_unique<FitnessCache>(cache_config);
  }

  StudyEngineConfig engine_config;
  engine_config.threads = bench_threads();
  engine_config.metrics = &metrics;
  engine_config.recorder = recorder.get();
  engine_config.cache = cache.get();
  engine_config.study_label = spec.figure + " — " + scenario.name;
  StudyEngine engine(engine_config);

  std::cout << "threads: " << engine.threads()
            << " (set EUS_THREADS; 0 = all cores, 1 = serial)\n"
            << "fitness cache: "
            << (cache ? std::to_string(cache->capacity()) + " genomes"
                      : std::string("off"))
            << " (set EUS_CACHE=off|on|<capacity>)\n";

  Stopwatch timer;
  const StudyResult study = engine.run(
      problem, figure_config(bench_seed(), spec.population), checkpoints,
      paper_population_specs(), [&](const std::string& name, std::size_t it) {
        std::cout << "  [" << timer.seconds() << "s] " << name << " @ " << it
                  << " iterations\n";
      });
  const double wall = timer.seconds();

  // One subplot per checkpoint, all five populations overlaid.
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    std::vector<PlotSeries> series;
    for (std::size_t p = 0; p < study.population_names.size(); ++p) {
      PlotSeries s{study.population_names[p], study.markers[p], {}, {}};
      for (const auto& pt : study.fronts[p][c]) {
        s.x.push_back(pt.energy / 1e6);
        s.y.push_back(pt.utility);
      }
      series.push_back(std::move(s));
    }
    PlotOptions opts;
    opts.title = "\n" + spec.figure + " subplot — fronts through " +
                 std::to_string(checkpoints[c]) + " iterations";
    opts.x_label = "total energy consumed (MJ)";
    opts.y_label = "total utility earned";
    std::cout << render_scatter(series, opts);
  }

  // The circled region (max utility-per-energy) on the final fronts.
  std::cout << "\nmost-efficient region per population (final checkpoint):\n";
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    const KneeAnalysis knee =
        analyze_utility_per_energy(study.final_front(p));
    std::cout << "  " << study.population_names[p] << ": peak "
              << knee.peak_ratio * 1e6 << " utility/MJ at "
              << knee.peak.energy / 1e6 << " MJ, " << knee.peak.utility
              << " utility\n";
  }

  // Bound attainment at the final checkpoint.
  std::cout << "\nutility-bound attainment @ final checkpoint:\n";
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    const auto& front = study.final_front(p);
    std::cout << "  " << study.population_names[p] << ": "
              << format_double(100.0 * front.back().utility /
                                   bounds.utility_upper_contention_free,
                               1)
              << "% of bound, energy floor "
              << format_double(front.front().energy / bounds.energy_lower, 3)
              << "x optimal\n";
  }

  // Convergence summary: hypervolume per population per checkpoint.
  std::vector<std::vector<EUPoint>> all;
  for (const auto& per_pop : study.fronts) {
    for (const auto& f : per_pop) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);
  std::cout << "\nhypervolume (normalized to best final):\n";
  double best_final = 0.0;
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    best_final =
        std::max(best_final, hypervolume(study.final_front(p), ref));
  }
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    std::cout << "  " << study.population_names[p] << ":";
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      std::cout << ' '
                << format_double(
                       hypervolume(study.fronts[p][c], ref) / best_final, 3);
    }
    std::cout << '\n';
  }

  // Machine-readable block.
  std::cout << "\nCSV population,iterations,energy_J,utility\n";
  CsvWriter csv(std::cout);
  for (std::size_t p = 0; p < study.fronts.size(); ++p) {
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      for (const auto& pt : study.fronts[p][c]) {
        csv.write_row({study.population_names[p],
                       std::to_string(checkpoints[c]),
                       format_double(pt.energy, 1),
                       format_double(pt.utility, 3)});
      }
    }
  }
  std::cout << "END CSV\n";

  // Telemetry digest (the full snapshot lands in the JSONL summary).
  const MetricsSnapshot snap = metrics.snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0U : it->second;
  };
  const auto timer_s = [&](const char* name) -> double {
    const auto it = snap.timers.find(name);
    return it == snap.timers.end() ? 0.0 : it->second.seconds;
  };
  const std::uint64_t evals = counter("nsga2.evaluations");
  std::cout << "telemetry: " << evals << " evaluations, "
            << format_double(wall > 0.0
                                 ? static_cast<double>(evals) / wall
                                 : 0.0,
                             0)
            << " evals/s; thread-time split: variation "
            << format_double(timer_s("nsga2.variation_s"), 2)
            << " s, evaluation "
            << format_double(timer_s("nsga2.evaluation_s"), 2)
            << " s, selection "
            << format_double(timer_s("nsga2.selection_s"), 2) << " s\n";
  if (const std::uint64_t lookups =
          counter("cache.hits") + counter("cache.misses");
      lookups > 0) {
    std::cout << "fitness cache: " << counter("cache.hits") << "/" << lookups
              << " lookups hit ("
              << format_double(100.0 *
                                   static_cast<double>(counter("cache.hits")) /
                                   static_cast<double>(lookups),
                               1)
              << "% hit rate, " << counter("cache.evictions")
              << " evictions)\n";
  }
  if (recorder) {
    std::cout << "run record: " << run_path << " ("
              << recorder->lines_written()
              << " lines; set EUS_RUNLOG to redirect, EUS_RUNLOG=off to "
                 "disable)\n";
  }
  std::cout << "total wall time: " << wall << " s\n";
  return study;
}

}  // namespace eus::bench
