// §II made measurable: the weighted-sum simulated-annealing baseline (the
// paper's ref-[8] style of solver) vs one NSGA-II run at the SAME total
// fitness-evaluation budget.  SA must split the budget across a weight
// sweep and still yields one point per weight; the NSGA-II spends it once
// and returns a full front.

#include <iostream>

#include "common.hpp"
#include "core/simulated_annealing.hpp"
#include "pareto/front.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(baseline_sa, "weighted-sum simulated-annealing sweep vs one NSGA-II run") {
  using namespace eus;

  const auto budget = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({1000000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== weighted-sum SA baseline vs NSGA-II (dataset 1, "
            << budget << " evaluations each) ==\n";

  // NSGA-II: one run, whole budget.
  Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
  ga.initialize({min_energy_allocation(scenario.system, scenario.trace)});
  ga.iterate(budget / 100);
  const auto ga_front = ga.front_points();

  // SA: eleven weights, budget split evenly.
  std::vector<double> lambdas;
  for (int k = 0; k <= 10; ++k) lambdas.push_back(k / 10.0);
  Rng rng(bench_seed() + 17);
  const auto sa_results = weighted_sum_sweep(problem, lambdas, budget, rng);
  std::vector<EUPoint> sa_points;
  for (const auto& r : sa_results) sa_points.push_back(r.objectives);
  const auto sa_front = pareto_front(sa_points);

  // Overlay.
  std::vector<PlotSeries> series;
  PlotSeries sg{"NSGA-II front (one run)", '*', {}, {}};
  for (const auto& p : ga_front) {
    sg.x.push_back(p.energy / 1e6);
    sg.y.push_back(p.utility);
  }
  PlotSeries ss{"SA best-per-weight (11 runs)", 'S', {}, {}};
  for (const auto& p : sa_points) {
    ss.x.push_back(p.energy / 1e6);
    ss.y.push_back(p.utility);
  }
  series.push_back(std::move(sg));
  series.push_back(std::move(ss));
  PlotOptions opts;
  opts.x_label = "energy (MJ)";
  opts.y_label = "utility";
  std::cout << render_scatter(series, opts);

  const EUPoint ref = enclosing_reference({ga_front, sa_points});
  AsciiTable table({"solver", "solutions", "nondominated", "HV (x1e9)",
                    "covered by the other"});
  table.add_row({"NSGA-II (one run)", std::to_string(ga_front.size()),
                 std::to_string(ga_front.size()),
                 format_double(hypervolume(ga_front, ref) / 1e9, 3),
                 format_double(coverage(sa_front, ga_front), 2)});
  table.add_row({"weighted-sum SA (11 runs)",
                 std::to_string(sa_points.size()),
                 std::to_string(sa_front.size()),
                 format_double(hypervolume(sa_front, ref) / 1e9, 3),
                 format_double(coverage(ga_front, sa_front), 2)});
  std::cout << table.render()
            << "\nExpected shape (the paper's §II argument, quantified): at "
               "equal budget the\nNSGA-II front carries ~10x more "
               "nondominated solutions, larger hypervolume,\nand covers "
               "most of the SA points — a weight sweep pays the whole "
               "budget per\npoint and still leaves the front's interior "
               "unexplored.\n";
  return 0;
}
