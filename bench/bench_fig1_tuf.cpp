// Figure 1: a sample task time-utility function, with the paper's two
// called-out evaluations (t=20 -> 12 utility, t=47 -> 7 utility), rendered
// as an ASCII curve and a value table.

#include <iostream>

#include "benchkit/registry.hpp"
#include "tuf/builder.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(fig1_tuf, "Figure 1 sample time-utility function with paper call-outs") {
  using namespace eus;

  const TimeUtilityFunction f = make_figure1_tuf();

  std::cout << "== Figure 1 — task time-utility function ==\n";
  PlotSeries curve{"utility(t)", '*', {}, {}};
  for (double t = 0.0; t <= 90.0; t += 0.5) {
    curve.x.push_back(t);
    curve.y.push_back(f.value(t));
  }
  PlotSeries callouts{"paper call-outs (t=20, t=47)", 'X',
                      {20.0, 47.0}, {f.value(20.0), f.value(47.0)}};
  PlotOptions opts;
  opts.x_label = "completion time";
  opts.y_label = "utility earned";
  std::cout << render_scatter({curve, callouts}, opts);

  std::cout << "\nvalues at selected completion times:\n";
  AsciiTable table({"completion time", "utility earned"});
  for (const double t : {0.0, 10.0, 20.0, 30.0, 47.0, 64.0, 79.0, 80.0, 90.0}) {
    table.add_row({format_double(t, 0), format_double(f.value(t), 2)});
  }
  std::cout << table.render();

  std::cout << "\npaper check: value(20) = " << f.value(20.0)
            << " (expected 12), value(47) = " << f.value(47.0)
            << " (expected 7)\n"
            << "monotonically decreasing: "
            << [&] {
                 double prev = f.value(0.0);
                 for (double t = 0.0; t <= 100.0; t += 0.1) {
                   if (f.value(t) > prev + 1e-12) return "NO";
                   prev = f.value(t);
                 }
                 return "yes";
               }()
            << ", priority (max utility): " << f.priority()
            << ", worthless after t = 80\n";
  return 0;
}
