// Load sweep (beyond the paper): how the trade-off space deforms as the
// offered load grows.  Sweeps the dataset-1 system from a lightly loaded
// trace to heavy overload (the paper's 250-task regime and beyond) and
// tracks front geometry, utility-bound attainment, and the knee.

#include <iostream>

#include "common.hpp"
#include "data/historical.hpp"
#include "sched/bounds.hpp"
#include "util/table.hpp"
#include "workload/analysis.hpp"
#include "workload/generator.hpp"

EUS_BENCHMARK(load_sweep, "trade-off space vs offered load") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.05).front()) *
      bench_scale());

  const SystemModel system = historical_system();
  const TufClassLibrary tufs = standard_tuf_classes(2.0 * 900.0);

  std::cout << "== load sweep (dataset-1 system, 15-minute window, "
            << generations << " generations each) ==\n";

  AsciiTable table({"tasks", "offered load", "% utility bound @ max-U",
                    "front width (MJ)", "knee utility/MJ",
                    "knee energy position"});

  for (const std::size_t tasks : {50UL, 125UL, 250UL, 500UL, 1000UL}) {
    Rng rng(bench_seed() + tasks);
    TraceConfig cfg;
    cfg.num_tasks = tasks;
    cfg.window_seconds = 900.0;
    const Trace trace = generate_trace(system, tufs, cfg, rng);

    const WorkloadAnalysis load = analyze_workload(system, trace);
    const ObjectiveBounds bounds = compute_bounds(system, trace);

    const UtilityEnergyProblem problem(system, trace);
    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_energy_allocation(system, trace),
                   min_min_completion_time_allocation(system, trace)});
    ga.iterate(generations);

    const auto front = ga.front_points();
    const KneeAnalysis knee = analyze_utility_per_energy(front);
    const double width = (front.back().energy - front.front().energy) / 1e6;
    const double knee_pos =
        front.back().energy > front.front().energy
            ? (knee.peak.energy - front.front().energy) /
                  (front.back().energy - front.front().energy)
            : 0.0;
    table.add_row(
        {std::to_string(tasks), format_double(load.offered_load, 2),
         format_double(100.0 * front.back().utility /
                           bounds.utility_upper_contention_free,
                       1) +
             "%",
         format_double(width, 3), format_double(knee.peak_ratio * 1e6, 0),
         format_double(knee_pos, 2)});
  }
  std::cout << table.render()
            << "\nExpected shape: at light load nearly the whole utility "
               "bound is reachable,\nthe front is narrow (few real choices) "
               "and the knee sits mid-front.  Under\noverload attainment "
               "falls, the front widens, efficiency (utility per MJ)\ndrops, "
               "and the knee migrates toward the high-energy end — every "
               "extra\njoule still buys utility because so much remains "
               "unearned.  The paper's\n250-task regime sits in the middle "
               "of this sweep.\n";
  return 0;
}
