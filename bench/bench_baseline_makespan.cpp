// Baseline cross-check: the predecessor bi-objective problem of the
// paper's ref [3] (Friese et al., INFOCOMP 2012) — minimize makespan and
// energy — run through the same NSGA-II machinery.  Confirms the MOEA is
// not specific to the utility objective, and reproduces [3]'s qualitative
// result that "spending more energy may allow a system to complete all the
// tasks within a batch sooner".

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(baseline_makespan, "ref-[3] makespan-energy baseline problem") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const MakespanEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== baseline: makespan vs energy (ref [3] problem, dataset 1, "
            << generations << " generations) ==\n";

  Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
  ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                 min_min_completion_time_allocation(scenario.system,
                                                    scenario.trace)});
  Stopwatch timer;
  ga.iterate(generations);
  std::cout << "evolved in " << timer.seconds() << " s\n";

  const auto front = ga.front_points();  // utility == -makespan
  PlotSeries s{"makespan-energy front", '*', {}, {}};
  for (const auto& p : front) {
    s.x.push_back(p.energy / 1e6);
    s.y.push_back(-p.utility);  // back to seconds
  }
  PlotOptions opts;
  opts.title = "\nenergy vs makespan (good = lower left)";
  opts.x_label = "energy (MJ)";
  opts.y_label = "makespan (s)";
  std::cout << render_scatter({s}, opts);

  AsciiTable table({"end of front", "energy (MJ)", "makespan (s)"});
  table.add_row({"cheapest", format_double(front.front().energy / 1e6, 3),
                 format_double(-front.front().utility, 1)});
  table.add_row({"fastest", format_double(front.back().energy / 1e6, 3),
                 format_double(-front.back().utility, 1)});
  std::cout << table.render();

  const double makespan_gain =
      -front.back().utility > 0.0
          ? (-front.front().utility) / (-front.back().utility)
          : 0.0;
  const double energy_cost = front.back().energy / front.front().energy;
  std::cout << "\nfastest schedule is " << format_double(makespan_gain, 2)
            << "x quicker than the cheapest, for "
            << format_double(energy_cost, 2)
            << "x the energy — the [3] trade-off, reproduced.\n"
            << "\nCSV energy_J,makespan_s\n";
  CsvWriter csv(std::cout);
  for (const auto& p : front) {
    csv.write_row({format_double(p.energy, 1), format_double(-p.utility, 2)});
  }
  std::cout << "END CSV\n";
  return 0;
}
