// Convergence curves: hypervolume vs generation for seeded and random
// populations on dataset 1 — the continuous version of Figures 3/4/6's
// four-checkpoint snapshots, built on the per-generation observer.

#include <iostream>

#include "common.hpp"
#include "pareto/archive.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(convergence, "hypervolume-vs-generation convergence curves") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());
  const std::size_t samples = 24;
  const std::size_t stride = std::max<std::size_t>(1, generations / samples);

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== convergence curves (dataset 1, " << generations
            << " generations, sampled every " << stride << ") ==\n";

  struct Curve {
    std::string name;
    char marker;
    std::vector<std::size_t> gens;
    std::vector<std::vector<EUPoint>> fronts;
  };
  std::vector<Curve> curves;

  const std::vector<PopulationSpec> specs = {
      {"min-energy seed", 'd', {SeedHeuristic::kMinEnergy}},
      {"min-min seed", 's', {SeedHeuristic::kMinMinCompletionTime}},
      {"random", '*', {}},
  };

  for (const auto& spec : specs) {
    Nsga2Config config = bench::figure_config(bench_seed(), 100);
    Nsga2 ga(problem, config);
    std::vector<Allocation> seeds;
    for (const SeedHeuristic h : spec.seeds) {
      seeds.push_back(make_seed(h, scenario.system, scenario.trace));
    }
    ga.initialize(seeds);

    Curve curve{spec.name, spec.marker, {}, {}};
    curve.gens.push_back(0);
    curve.fronts.push_back(ga.front_points());
    ga.set_observer([&](std::size_t gen, const std::vector<Individual>& pop) {
      if (gen % stride != 0 && gen != generations) return;
      std::vector<EUPoint> front;
      for (const auto& ind : pop) {
        if (ind.rank == 0) front.push_back(ind.objectives);
      }
      curve.gens.push_back(gen);
      curve.fronts.push_back(std::move(front));
    });
    ga.iterate(generations);
    curves.push_back(std::move(curve));
  }

  // Shared reference for comparable hypervolumes.
  std::vector<std::vector<EUPoint>> all;
  for (const auto& c : curves) {
    for (const auto& f : c.fronts) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);

  double best = 0.0;
  for (const auto& c : curves) {
    best = std::max(best, hypervolume(c.fronts.back(), ref));
  }

  std::vector<PlotSeries> series;
  for (const auto& c : curves) {
    PlotSeries s{c.name, c.marker, {}, {}};
    for (std::size_t k = 0; k < c.gens.size(); ++k) {
      s.x.push_back(static_cast<double>(c.gens[k]));
      s.y.push_back(hypervolume(c.fronts[k], ref) / best);
    }
    series.push_back(std::move(s));
  }
  PlotOptions opts;
  opts.title = "normalized hypervolume vs generation";
  opts.x_label = "generation";
  opts.y_label = "HV / best-final";
  std::cout << render_scatter(series, opts);

  std::cout << "\nCSV population,generation,normalized_hv\n";
  CsvWriter csv(std::cout);
  for (std::size_t ci = 0; ci < curves.size(); ++ci) {
    for (std::size_t k = 0; k < curves[ci].gens.size(); ++k) {
      csv.write_row({curves[ci].name, std::to_string(curves[ci].gens[k]),
                     format_double(series[ci].y[k], 4)});
    }
  }
  std::cout << "END CSV\n"
            << "\nExpected shape: the seeded curves start higher (their "
               "seed anchors useful\nregions immediately) and the random "
               "curve needs a burn-in before the\nthree converge — the "
               "continuous view of the paper's checkpoint story.\n";
  return 0;
}
