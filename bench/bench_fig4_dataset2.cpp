// Figure 4: Pareto fronts for the synthetic 1000-task data set (dataset 2,
// 30 task types / 13 machine types / 30 machines per Table III), five
// seeded populations, through 1k / 10k / 100k / 1M NSGA-II iterations.
//
// Expected shape (paper §VI): early checkpoints show each seed owning its
// region (min-energy lowest energies, min-min / max-utility highest
// utilities); later checkpoints converge toward a common front.

#include "common.hpp"

EUS_BENCHMARK(fig4_dataset2, "Figure 4 five-seed front study on dataset 2 (1000 tasks)") {
  using namespace eus;
  bench::FigureSpec spec;
  spec.figure = "Figure 4";
  spec.paper_iters = {1000, 10000, 100000, 1000000};
  spec.default_scale = 0.005;  // 5 / 50 / 500 / 5,000 by default
  const Scenario scenario = make_dataset2(bench_seed());
  (void)bench::run_figure(ctx, spec, scenario);
  return 0;
}
