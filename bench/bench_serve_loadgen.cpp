// serve_loadgen: end-to-end serving throughput.  Boots an in-process
// eus_served engine on an ephemeral loopback port, then drives it with 8
// concurrent client connections issuing a mixed request stream (greedy
// heuristics, one shared NSGA-II budget that exercises the front cache,
// and pareto-queries answered from it).  The scenario fails when any
// request is refused or errors — backpressure should never trigger at this
// offered load — so the recorded wall-clock measures the full
// frame/parse/dispatch/evaluate/respond loop.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/registry.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"
#include "util/json_value.hpp"

namespace {

using namespace eus;
using namespace eus::serve;

constexpr std::size_t kClients = 8;

std::string scenario_block(std::uint64_t seed) {
  return R"("scenario":{"name":"custom","tasks":12,"window_s":30,"seed":)" +
         std::to_string(seed) + "}";
}

}  // namespace

EUS_BENCHMARK(serve_loadgen,
              "eus_served loopback load: 8 concurrent clients, mixed "
              "heuristic/nsga2/pareto-query stream (EUS_SCALE)") {
  const auto requests_each = static_cast<std::size_t>(
      static_cast<double>(12) * bench_scale() + 0.5);
  const std::size_t per_client = requests_each < 2 ? 2 : requests_each;
  const std::uint64_t seed = bench_seed();

  ServerConfig config;
  config.queue_depth = 128;  // no shedding at this offered load
  config.workers = 4;
  config.metrics = ctx.metrics;  // serve.* metrics land in BENCH results
  Server server(config);
  server.start();

  const std::string nsga2_request =
      R"({"type":"allocate","mode":"nsga2",)" + scenario_block(seed) +
      R"(,"nsga2":{"population":8,"generations":4,"seeds":["min-energy"]}})";
  const std::string query_request =
      R"({"type":"allocate","mode":"pareto-query",)" + scenario_block(seed) +
      R"(,"nsga2":{"population":8,"generations":4,"seeds":["min-energy"]}})";

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ClientConnection connection;
        connection.connect(server.port());
        for (std::size_t r = 0; r < per_client; ++r) {
          const std::string& request =
              r % 3 == 0 ? nsga2_request
              : r % 3 == 1
                  ? R"({"type":"allocate","mode":"heuristic:min-min",)" +
                        scenario_block(seed + c) + "}"
                  : query_request;
          const util::JsonValue doc =
              util::parse_json(connection.call(request));
          if (static_cast<int>(doc.number_or("code", 0.0)) != kCodeOk) {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();

  return failures.load() == 0 ? 0 : 1;
}
