// Population-size ablation at a fixed *evaluation* budget: a bigger
// population holds a wider front per generation but evolves fewer
// generations for the same cost.  The paper fixes N=100; this shows the
// trade-off around that choice.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_population, "population size at a fixed evaluation budget") {
  using namespace eus;

  const auto budget = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({1000000}, 0.1).front()) *
      bench_scale());  // total offspring evaluations

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== population-size ablation (dataset 1, ~" << budget
            << " offspring evaluations each) ==\n";

  const std::vector<std::size_t> sizes = {20, 50, 100, 200, 400};
  std::vector<std::vector<EUPoint>> fronts;

  AsciiTable table({"population N", "generations", "front size",
                    "final HV (x1e9)", "spread"});
  for (const std::size_t n : sizes) {
    const std::size_t generations = std::max<std::size_t>(1, budget / n);
    Nsga2Config config = bench::figure_config(bench_seed(), n);
    Nsga2 ga(problem, config);
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace)});
    ga.iterate(generations);
    fronts.push_back(ga.front_points());
    table.add_row({std::to_string(n), std::to_string(generations),
                   std::to_string(fronts.back().size()), "-",
                   format_double(spread(fronts.back()), 3)});
  }

  const EUPoint ref = enclosing_reference(fronts);
  std::cout << table.render() << "hypervolumes (x1e9): ";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::cout << sizes[i] << "->"
              << format_double(hypervolume(fronts[i], ref) / 1e9, 3) << ' ';
  }
  std::cout << "\n\nExpected shape: tiny populations converge fast but hold "
               "narrow fronts;\nvery large ones spend the budget before "
               "converging.  N=100 (the paper's\nchoice) sits near the "
               "sweet spot at these budgets.\n";
  return 0;
}
