// Evaluator microbenchmarks: full-simulation throughput, the incremental
// delta path, and the delta-size sweep that shows where the evaluator
// falls back to a full pass.  All three run on dataset 3 (4000 tasks, 30
// machines) — the workload whose inner loop the SoA layout and
// delta-evaluator exist for (docs/evaluator.md).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <vector>

#include "benchkit/registry.hpp"
#include "sched/eval_state.hpp"
#include "sched/evaluator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace eus;

const Scenario& dataset3() {
  static const Scenario s = make_dataset3(1);
  return s;
}

/// EUS_SCALE-scaled repetition count with a floor that keeps the
/// per-evaluation medians meaningful.
std::size_t scaled_evals(double base) {
  const double n = base * bench_scale();
  return n < 64.0 ? 64 : static_cast<std::size_t>(n);
}

Allocation random_valid_allocation(const SystemModel& sys,
                                   const Trace& trace, Rng& rng) {
  const std::size_t n = trace.size();
  Allocation a;
  a.machine.resize(n);
  a.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& eligible = sys.eligible_machines(trace.tasks()[i].type);
    a.machine[i] = eligible[rng.below(eligible.size())];
    a.order[i] = static_cast<int>(rng.below(n));
  }
  return a;
}

/// Edits `genes` random genes in place, recording them in `touched`.
void touch_genes(Allocation& child, const SystemModel& sys,
                 const Trace& trace, Rng& rng, std::size_t genes,
                 std::vector<std::uint32_t>& touched) {
  const std::size_t n = child.machine.size();
  touched.clear();
  for (std::size_t k = 0; k < genes; ++k) {
    const auto g = static_cast<std::uint32_t>(rng.below(n));
    if (rng.below(2) == 0) {
      const auto& eligible = sys.eligible_machines(trace.tasks()[g].type);
      child.machine[g] = eligible[rng.below(eligible.size())];
    } else {
      child.order[g] = static_cast<int>(rng.below(n));
    }
    touched.push_back(g);
  }
}

double us_per(std::chrono::steady_clock::duration elapsed,
              std::size_t count) {
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(count == 0 ? 1 : count);
}

}  // namespace

EUS_BENCHMARK(evaluator_full,
              "full-simulation throughput on dataset 3: distinct random "
              "genomes through Evaluator::evaluate (EUS_SCALE)") {
  const Scenario& s = dataset3();
  EvaluatorOptions options;
  options.metrics = ctx.metrics;
  const Evaluator ev(s.system, s.trace, options);

  const std::size_t evals = scaled_evals(100000.0);
  Rng rng(7);
  std::vector<Allocation> genomes;
  genomes.reserve(evals);
  for (std::size_t k = 0; k < evals; ++k) {
    genomes.push_back(random_valid_allocation(s.system, s.trace, rng));
  }

  double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Allocation& a : genomes) sink += ev.evaluate(a).energy;
  const auto t1 = std::chrono::steady_clock::now();

  std::cout << "== evaluator_full — " << s.name << " ==\n"
            << "tasks: " << s.trace.size()
            << ", machines: " << s.system.num_machines() << '\n'
            << evals << " full evaluations, " << us_per(t1 - t0, evals)
            << " us/eval (checksum " << sink << ")\n";
  return 0;
}

EUS_BENCHMARK(evaluator_incremental,
              "incremental delta path on dataset 3: 2-gene children "
              "(the typical mutation delta) against a cached parent "
              "state (EUS_SCALE)") {
  const Scenario& s = dataset3();
  EvaluatorOptions options;
  options.metrics = ctx.metrics;
  const Evaluator ev(s.system, s.trace, options);

  const std::size_t evals = scaled_evals(100000.0);
  Rng rng(11);
  const Allocation parent = random_valid_allocation(s.system, s.trace, rng);
  EvalState parent_state;
  ev.evaluate(parent, parent_state);

  // Pre-build the children so the timed loop is evaluation only.
  // Mutation edits one or two genes; crossover deltas are larger but get
  // filtered against the parent gene-wise.  Two touched genes is the
  // typical surviving hint (see evaluator_delta_sweep for the full curve).
  constexpr std::size_t kTouched = 2;
  std::vector<Allocation> children(evals, parent);
  std::vector<std::vector<std::uint32_t>> touched(evals);
  for (std::size_t k = 0; k < evals; ++k) {
    touch_genes(children[k], s.system, s.trace, rng, kTouched, touched[k]);
  }

  double sink = 0.0;
  EvalState out;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < evals; ++k) {
    sink += ev.evaluate_incremental(children[k], parent, parent_state,
                                    touched[k], out)
                .energy;
  }
  const auto t1 = std::chrono::steady_clock::now();

  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < evals; ++k) {
    sink += ev.evaluate(children[k]).energy;
  }
  const auto t3 = std::chrono::steady_clock::now();

  const double delta_us = us_per(t1 - t0, evals);
  const double full_us = us_per(t3 - t2, evals);
  std::cout << "== evaluator_incremental — " << s.name << " ==\n"
            << evals << " x " << kTouched << "-gene deltas: " << delta_us
            << " us/eval vs " << full_us << " us/eval full ("
            << (delta_us > 0.0 ? full_us / delta_us : 0.0)
            << "x, checksum " << sink << ")\n";
  return 0;
}

EUS_BENCHMARK(evaluator_delta_sweep,
              "delta-size sweep on dataset 3: per-eval time vs touched "
              "genes, through the fallback crossover (EUS_SCALE)") {
  const Scenario& s = dataset3();
  EvaluatorOptions options;
  options.metrics = ctx.metrics;
  const Evaluator ev(s.system, s.trace, options);

  const std::size_t per_size = std::max<std::size_t>(16, scaled_evals(8000.0));
  Rng rng(13);
  const Allocation parent = random_valid_allocation(s.system, s.trace, rng);
  EvalState parent_state;
  ev.evaluate(parent, parent_state);

  std::cout << "== evaluator_delta_sweep — " << s.name << " ==\n";
  AsciiTable table({"touched genes", "us/eval", "path"});
  double sink = 0.0;
  for (const std::size_t genes :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
        std::size_t{256}, std::size_t{1024}, s.trace.size() / 2 + 1}) {
    std::vector<Allocation> children(per_size, parent);
    std::vector<std::vector<std::uint32_t>> touched(per_size);
    for (std::size_t k = 0; k < per_size; ++k) {
      touch_genes(children[k], s.system, s.trace, rng, genes, touched[k]);
    }
    EvalState out;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < per_size; ++k) {
      sink += ev.evaluate_incremental(children[k], parent, parent_state,
                                      touched[k], out)
                  .energy;
    }
    const auto t1 = std::chrono::steady_clock::now();
    table.add_row({std::to_string(genes),
                   format_double(us_per(t1 - t0, per_size), 2),
                   genes * 2 > s.trace.size() ? "full fallback" : "delta"});
  }
  std::cout << table.render() << "(checksum " << sink << ")\n";
  return 0;
}
