// Figure 3: Pareto fronts of total energy consumed vs total utility earned
// for the real historical data set (dataset 1), five seeded initial
// populations, through 100 / 1,000 / 10,000 / 100,000 NSGA-II iterations.
//
// Expected shape (paper §VI): distinct per-seed fronts early; convergence
// of all populations (including all-random) to a common front late; an
// interior utility-per-energy peak region on the converged front.

#include "common.hpp"

EUS_BENCHMARK(fig3_dataset1, "Figure 3 five-seed front study on dataset 1 (250 tasks)") {
  using namespace eus;
  bench::FigureSpec spec;
  spec.figure = "Figure 3";
  spec.paper_iters = {100, 1000, 10000, 100000};
  spec.default_scale = 0.1;  // 10 / 100 / 1,000 / 10,000 by default
  const Scenario scenario = make_dataset1(bench_seed());
  (void)bench::run_figure(ctx, spec, scenario);
  return 0;
}
