// Crowding-distance ablation: §IV-D credits crowding with "a more equally
// spaced Pareto front".  Runs dataset 1 with the crowding truncation on and
// off and compares the spread metric (lower = more even) and hypervolume.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_crowding, "crowding truncation on/off: spread, width, hypervolume") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== crowding-distance ablation (dataset 1, " << generations
            << " generations) ==\n";

  AsciiTable table({"truncation policy", "spread (lower=more even)",
                    "final HV (x1e9)", "front size", "front width (MJ)"});

  std::vector<std::vector<EUPoint>> fronts;
  // Several seeds so the comparison is not a single-run fluke.
  const std::vector<std::uint64_t> seeds = {bench_seed(), bench_seed() + 1,
                                            bench_seed() + 2};
  for (const bool use_crowding : {true, false}) {
    double sum_spread = 0.0, sum_width = 0.0;
    std::size_t sum_size = 0;
    std::vector<EUPoint> last;
    for (const std::uint64_t seed : seeds) {
      Nsga2Config config = bench::figure_config(seed, 100);
      config.use_crowding = use_crowding;
      Nsga2 ga(problem, config);
      ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                     min_min_completion_time_allocation(scenario.system,
                                                        scenario.trace)});
      ga.iterate(generations);
      last = ga.front_points();
      sum_spread += spread(last);
      sum_width += (last.back().energy - last.front().energy) / 1e6;
      sum_size += last.size();
    }
    fronts.push_back(last);
    const auto n = static_cast<double>(seeds.size());
    table.add_row({use_crowding ? "crowding distance (paper)"
                                : "ascending-energy truncation",
                   format_double(sum_spread / n, 3), "-",
                   std::to_string(sum_size / seeds.size()),
                   format_double(sum_width / n, 3)});
  }

  const EUPoint ref = enclosing_reference(fronts);
  // Fill in the HV column using the last run of each policy.
  std::cout << table.render();
  std::cout << "final-run hypervolumes: crowding="
            << hypervolume(fronts[0], ref) / 1e9
            << "e9, no-crowding=" << hypervolume(fronts[1], ref) / 1e9
            << "e9\n"
            << "\nExpected shape: without crowding the kept solutions pile "
               "up at the\nlow-energy end (ascending-energy truncation), "
               "shrinking front width and\nevenness — the paper's rationale "
               "for Algorithm 1 step 10.\n";
  return 0;
}
