// Table III: the breakup of the 30 machine instances across the 13 machine
// types of datasets 2 and 3, printed from the actual expanded system so the
// table reflects what the experiments really run on.

#include <iostream>

#include "benchkit/registry.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

EUS_BENCHMARK(table3_machines, "Table III 30-machine breakup and special-machine assignments") {
  using namespace eus;

  const ExpandedSystem ex = make_expanded_system(bench_seed());
  const SystemModel& sys = ex.model;

  std::cout << "== Table III — breakup of machines to machine types ==\n";
  AsciiTable table({"machine type", "category", "number of machines"});
  // Paper order: special machines first, then the general types.
  for (std::size_t ty = 9; ty < sys.num_machine_types(); ++ty) {
    table.add_row({sys.machine_types()[ty].name,
                   to_string(sys.machine_types()[ty].category),
                   std::to_string(sys.count_of_type(ty))});
  }
  for (std::size_t ty = 0; ty < 9; ++ty) {
    table.add_row({sys.machine_types()[ty].name,
                   to_string(sys.machine_types()[ty].category),
                   std::to_string(sys.count_of_type(ty))});
  }
  std::cout << table.render()
            << "total machines: " << sys.num_machines() << '\n';

  std::cout << "\n== special-purpose machine task assignments (seed-"
            << bench_seed() << " expansion) ==\n";
  AsciiTable special({"special machine", "accelerated task type",
                      "ETC there (s)", "best general ETC (s)", "speedup"});
  for (const std::size_t t : ex.special_task_types) {
    const auto mt =
        static_cast<std::size_t>(sys.task_types()[t].special_machine_type);
    double best_general = kIneligible;
    for (std::size_t c = 0; c < 9; ++c) {
      best_general = std::min(best_general, sys.etc()(t, c));
    }
    const double special_etc = sys.etc()(t, mt);
    special.add_row({sys.machine_types()[mt].name, sys.task_types()[t].name,
                     format_double(special_etc, 1),
                     format_double(best_general, 1),
                     format_double(best_general / special_etc, 1) + "x"});
  }
  std::cout << special.render()
            << "\ntask-type census: " << sys.num_task_types() << " total, "
            << ex.special_task_types.size() << " special-purpose\n";
  return 0;
}
