// fleet_loadgen: end-to-end fleet throughput and the router's scaling
// curve.  Boots N in-process eus_served engines plus one eus_router on
// ephemeral loopback ports, then drives the router with 6 concurrent
// client connections issuing distinct-seed NSGA-II requests — every
// request is a cache miss with a fresh fingerprint, so the work spreads
// across the ring and the wall-clock measures real multi-backend
// execution, not front-cache hits.  The two registered scenarios share one
// body: fleet_loadgen_1 (a single backend, the proxying-overhead
// baseline) and fleet_loadgen_3 (three backends; CI's perf-full job
// checks the 1 -> 3 speedup on multi-core runners).  The scenario fails
// when any request errors — failover and backpressure should never
// trigger at this offered load.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/registry.hpp"
#include "fleet/router.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"
#include "util/json_value.hpp"

namespace {

using namespace eus;

constexpr std::size_t kClients = 6;

std::string nsga2_request(std::uint64_t seed) {
  return R"({"type":"allocate","mode":"nsga2","scenario":{"name":"custom",)"
         R"("tasks":12,"window_s":30,"seed":)" +
         std::to_string(seed) +
         R"(},"nsga2":{"population":8,"generations":4,)"
         R"("seeds":["min-energy"]}})";
}

int run_fleet_loadgen(benchkit::ScenarioContext& ctx,
                      std::size_t backends) {
  const auto requests_each = static_cast<std::size_t>(
      static_cast<double>(9) * bench_scale() + 0.5);
  const std::size_t per_client = requests_each < 3 ? 3 : requests_each;
  const std::uint64_t seed = bench_seed();

  std::vector<std::unique_ptr<serve::Server>> servers;
  fleet::FleetConfig fleet;
  for (std::size_t b = 0; b < backends; ++b) {
    serve::ServerConfig config;
    config.queue_depth = 128;  // no shedding at this offered load
    // One worker per backend: each backend is a single-threaded engine, so
    // the 1 -> 3 scaling curve measures fleet capacity, not intra-backend
    // thread parallelism.
    config.workers = 1;
    config.metrics = ctx.metrics;  // serve.* aggregates across backends
    servers.push_back(std::make_unique<serve::Server>(config));
    servers.back()->start();

    fleet::BackendConfig backend;
    backend.name = "bk" + std::to_string(b + 1);
    backend.port = servers.back()->port();
    fleet.backends.push_back(std::move(backend));
  }

  fleet::RouterConfig config;
  config.fleet = std::move(fleet);
  config.policy = fleet::RoutePolicy::kMinMin;
  config.health_period_s = 0.0;  // all backends live; no prober needed
  config.metrics = ctx.metrics;  // fleet.* lands in BENCH results
  fleet::Router router(config);
  router.start();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::ClientConnection connection;
        connection.connect(router.port());
        for (std::size_t r = 0; r < per_client; ++r) {
          // A unique seed per request keeps every fingerprint fresh: no
          // cache hits, so all backends do real evolution work.
          const std::string request =
              nsga2_request(seed + c * per_client + r);
          const util::JsonValue doc =
              util::parse_json(connection.call(request));
          if (static_cast<int>(doc.number_or("code", 0.0)) !=
              serve::kCodeOk) {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  router.stop();
  for (const auto& server : servers) server->stop();
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

EUS_BENCHMARK(fleet_loadgen_1,
              "eus_router with 1 backend: 6 clients, distinct-seed nsga2 "
              "stream (proxy-overhead baseline, EUS_SCALE)") {
  return run_fleet_loadgen(ctx, 1);
}

EUS_BENCHMARK(fleet_loadgen_3,
              "eus_router with 3 backends: 6 clients, distinct-seed nsga2 "
              "stream (scaling vs fleet_loadgen_1, EUS_SCALE)") {
  return run_fleet_loadgen(ctx, 3);
}
