// Memetic-polish ablation (beyond the paper): spend a slice of the budget
// hill-climbing the final front instead of evolving longer.  Compares
// "GA only" against "GA (90% budget) + polish_front (10% budget)" at equal
// total fitness evaluations.

#include <iostream>

#include "common.hpp"
#include "core/local_search.hpp"
#include "pareto/front.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_polish, "memetic local-search polishing at equal budget") {
  using namespace eus;

  const auto budget = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({1000000}, 0.1).front()) *
      bench_scale());  // total offspring evaluations

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== memetic-polish ablation (dataset 1, ~" << budget
            << " evaluations per variant) ==\n";

  const auto run_ga = [&](std::size_t generations) {
    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                   min_min_completion_time_allocation(scenario.system,
                                                      scenario.trace)});
    ga.iterate(generations);
    return ga.front();
  };

  // Variant A: pure GA for the whole budget (100 evals per generation).
  const auto pure = run_ga(budget / 100);
  std::vector<EUPoint> pure_points;
  for (const auto& ind : pure) pure_points.push_back(ind.objectives);

  // Variant B: GA for 90%, then polish the front with the remaining 10%.
  const auto evolved = run_ga(budget * 9 / 10 / 100);
  std::vector<Allocation> genomes;
  std::vector<EUPoint> polished_points;
  for (const auto& ind : evolved) {
    genomes.push_back(ind.genome);
    polished_points.push_back(ind.objectives);
  }
  Rng rng(bench_seed() + 1);
  const std::size_t per_member =
      genomes.empty() ? 0 : (budget / 10) / genomes.size();
  const auto polished =
      polish_front(problem, genomes, std::max<std::size_t>(per_member, 2),
                   rng);
  for (const auto& r : polished) polished_points.push_back(r.objectives);

  const EUPoint ref = enclosing_reference({pure_points, polished_points});
  std::size_t improvements = 0;
  for (const auto& r : polished) improvements += r.improvements;

  AsciiTable table({"variant", "HV (x1e9)", "min energy (MJ)",
                    "max utility"});
  const auto add = [&](const char* name, const std::vector<EUPoint>& pts) {
    const auto front = pareto_front(pts);
    table.add_row({name, format_double(hypervolume(front, ref) / 1e9, 4),
                   format_double(front.front().energy / 1e6, 3),
                   format_double(front.back().utility, 1)});
  };
  add("pure GA (100% budget)", pure_points);
  add("GA 90% + polish 10%", polished_points);
  std::cout << table.render()
            << "local-search improvements applied: " << improvements << '\n'
            << "\nExpected shape: near a wash on hypervolume — crossover "
               "and mutation are\nalready strong local movers for this "
               "encoding — with polish typically\nbuying a slightly better "
               "utility extreme.  The interesting negative result:\nmemetic "
               "refinement is NOT an easy win here, supporting the paper's "
               "choice\nof a plain NSGA-II.\n";
  return 0;
}
