// Microbenchmarks (google-benchmark) for the framework's hot paths:
// chromosome evaluation, nondominated sorting, crowding, genetic operators,
// Gram-Charlier sampling, the greedy seeds, and full NSGA-II generations —
// including the parallel-evaluation path.

#include <benchmark/benchmark.h>

#include "benchkit/registry.hpp"
#include "core/crowding.hpp"
#include "core/nondominated_sort.hpp"
#include "core/nsga2.hpp"
#include "core/operators.hpp"
#include "core/study.hpp"
#include "data/historical.hpp"
#include "des/des_evaluator.hpp"
#include "synth/gram_charlier.hpp"
#include "synth/sampler.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace eus;

const Scenario& dataset1() {
  static const Scenario s = make_dataset1(1);
  return s;
}

const Scenario& dataset3() {
  static const Scenario s = make_dataset3(1);
  return s;
}

const Scenario& scenario_for_tasks(std::int64_t tasks) {
  if (tasks <= 250) return dataset1();
  static const Scenario s1000 = make_dataset2(1);
  if (tasks <= 1000) return s1000;
  return dataset3();
}

void BM_EvaluateAllocation(benchmark::State& state) {
  const Scenario& s = scenario_for_tasks(state.range(0));
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(7);
  const Allocation a = random_allocation(problem, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(a));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.trace.size()));
}
BENCHMARK(BM_EvaluateAllocation)->Arg(250)->Arg(1000)->Arg(4000);

std::vector<EUPoint> random_points(std::size_t n) {
  Rng rng(9);
  std::vector<EUPoint> pts(n);
  for (auto& p : pts) {
    p.energy = rng.uniform(0.0, 1.0);
    p.utility = rng.uniform(0.0, 1.0);
  }
  return pts;
}

void BM_DesEvaluate(benchmark::State& state) {
  // The event-driven evaluator vs the analytic one (BM_EvaluateAllocation):
  // how much the independent cross-validator costs.
  const Scenario& s = scenario_for_tasks(state.range(0));
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(8);
  const Allocation a = random_allocation(problem, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(des_evaluate(s.system, s.trace, a));
  }
}
BENCHMARK(BM_DesEvaluate)->Arg(250)->Arg(1000);

void BM_NondominatedSortSweep(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nondominated_sort_sweep(pts));
  }
}
BENCHMARK(BM_NondominatedSortSweep)->Arg(50)->Arg(200)->Arg(800);

void BM_NondominatedSortDeb(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nondominated_sort_deb(pts));
  }
}
BENCHMARK(BM_NondominatedSortDeb)->Arg(50)->Arg(200)->Arg(800);

void BM_CrowdingDistance(benchmark::State& state) {
  Rng rng(10);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<EUPoint> pts(n);
  std::vector<std::size_t> front(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    front[i] = i;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowding_distances(pts, front));
  }
}
BENCHMARK(BM_CrowdingDistance)->Arg(200);

void BM_Crossover(benchmark::State& state) {
  const Scenario& s = scenario_for_tasks(state.range(0));
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(11);
  Allocation a = random_allocation(problem, rng);
  Allocation b = random_allocation(problem, rng);
  for (auto _ : state) {
    crossover(a, b, rng);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Crossover)->Arg(250)->Arg(4000);

void BM_Mutate(benchmark::State& state) {
  const Scenario& s = dataset1();
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(12);
  Allocation a = random_allocation(problem, rng);
  for (auto _ : state) {
    mutate(a, problem, rng);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Mutate);

void BM_GramCharlierSample(benchmark::State& state) {
  Moments m{};
  m.mean = 100.0;
  m.stddev = 20.0;
  m.variance = 400.0;
  m.cv = 0.2;
  m.skewness = 0.6;
  m.kurtosis = 3.5;
  const GramCharlierPdf pdf(m);
  const TabulatedSampler sampler([&](double x) { return pdf.density(x); },
                                 1.0, 200.0, 2048);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.quantile(rng.uniform()));
  }
}
BENCHMARK(BM_GramCharlierSample);

void BM_MinMinSeed(benchmark::State& state) {
  const Scenario& s = scenario_for_tasks(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        min_min_completion_time_allocation(s.system, s.trace));
  }
}
BENCHMARK(BM_MinMinSeed)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Nsga2Generation(benchmark::State& state) {
  const Scenario& s = scenario_for_tasks(state.range(0));
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config config;
  config.population_size = 100;
  config.seed = 3;
  Nsga2 ga(problem, config);
  ga.initialize({});
  for (auto _ : state) {
    ga.iterate(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);  // offspring evaluations
}
BENCHMARK(BM_Nsga2Generation)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_Nsga2GenerationThreaded(benchmark::State& state) {
  const Scenario& s = dataset3();
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config config;
  config.population_size = 100;
  config.seed = 3;
  config.threads = static_cast<std::size_t>(state.range(0));
  Nsga2 ga(problem, config);
  ga.initialize({});
  for (auto _ : state) {
    ga.iterate(1);
  }
}
BENCHMARK(BM_Nsga2GenerationThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SyntheticExpansion(benchmark::State& state) {
  const SystemModel base = historical_system();
  ExpansionConfig cfg;
  cfg.additional_task_types = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> instances(base.num_machine_types() + 4, 1);
  Rng rng(14);
  for (auto _ : state) {
    Rng child = rng.split();
    benchmark::DoNotOptimize(expand_system(base, cfg, instances, child));
  }
}
BENCHMARK(BM_SyntheticExpansion)
    ->Arg(25)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Registered as one scenario: the wall-clock eus_bench records is the whole
// suite's, so the per-op numbers of interest stay in the (–-verbose)
// google-benchmark report rather than the baseline gate.
EUS_BENCHMARK(micro_ops,
              "google-benchmark microbenches (evaluator, DES, sorts, "
              "operators, sampling, threading)") {
  static bool initialized = false;
  if (!initialized) {
    int argc = 1;
    char arg0[] = "eus_bench_micro_ops";
    char* argv[] = {arg0, nullptr};
    benchmark::Initialize(&argc, argv);
    initialized = true;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
