// DVFS ablation (§VII future work, implemented): compare the nominal
// utility/energy front against fronts evolved with cubic-power P-state
// tables of increasing depth.  DVFS should extend the front's low-energy
// end below the nominal minimum-energy floor.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_dvfs, "DVFS P-state depth vs the energy floor") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());

  std::cout << "== DVFS ablation (dataset 1, " << generations
            << " generations each) ==\n";

  struct Variant {
    std::string name;
    std::vector<double> freqs;  // empty = nominal
  };
  const std::vector<Variant> variants = {
      {"nominal (no DVFS)", {}},
      {"2 P-states {0.8, 1.0}", {0.8, 1.0}},
      {"3 P-states {0.6, 0.8, 1.0}", {0.6, 0.8, 1.0}},
      {"4 P-states {0.5, 0.7, 0.85, 1.0}", {0.5, 0.7, 0.85, 1.0}},
  };

  std::vector<std::vector<EUPoint>> fronts;
  double nominal_floor = 0.0;
  AsciiTable table({"variant", "min energy (MJ)", "vs nominal floor",
                    "max utility", "front size"});
  for (const auto& variant : variants) {
    EvaluatorOptions opts;
    if (!variant.freqs.empty()) opts.dvfs = make_cubic_dvfs(variant.freqs);
    const UtilityEnergyProblem problem(scenario.system, scenario.trace, opts);

    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    std::vector<Allocation> seeds;
    Allocation me = min_energy_allocation(scenario.system, scenario.trace);
    if (!variant.freqs.empty()) {
      Allocation slow = me;
      slow.pstate.assign(slow.size(), 0);
      seeds.push_back(std::move(slow));
    }
    seeds.push_back(std::move(me));
    ga.initialize(seeds);
    ga.iterate(generations);
    fronts.push_back(ga.front_points());

    const double floor = fronts.back().front().energy;
    if (variant.freqs.empty()) nominal_floor = floor;
    table.add_row(
        {variant.name, format_double(floor / 1e6, 3),
         format_double(100.0 * floor / nominal_floor, 1) + "%",
         format_double(fronts.back().back().utility, 1),
         std::to_string(fronts.back().size())});
  }
  std::cout << table.render()
            << "\nEnergy per task scales as f^2 under the cubic power "
               "model, so deeper\nP-state tables push the floor toward "
               "(lowest f)^2 of nominal — at the\ncost of utility lost to "
               "longer execution times.\n";
  return 0;
}
