// serve_warm_loadgen: the warm-start payoff, measured.  Primes a tenant's
// archive with one converged base run, then times two delta streams over
// the in-process handlers at the same cold budget: warm deltas (archived
// base repaired + short polish) and cold deltas (archive miss, full
// re-optimization).  The scenario fails unless the warm p95 beats the cold
// p95 by at least 10x — the subsystem's headline claim (docs/tenant.md).
//
// p95s land in BENCH_results.json as counters (warm.p95_us, cold.p95_us,
// warm.speedup_x10); the deterministic request counters (serve.delta.warm,
// serve.delta.cold, archive.warm_hits) gate regressions in baselines.json.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "benchkit/registry.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "tenant/archive_store.hpp"
#include "util/env.hpp"
#include "util/json_value.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace eus;
using namespace eus::serve;

// Cold budget 128 generations vs. a 2-generation warm polish: by
// evaluation count the gap is ~40x, leaving headroom over the 10x gate on
// noisy shared runners.
constexpr std::size_t kColdGenerations = 128;
constexpr std::size_t kPolishGenerations = 2;

std::string base_block(std::uint64_t seed) {
  return R"({"name":"custom","tasks":60,"window_s":120,"seed":)" +
         std::to_string(seed) + "}";
}

std::string nsga2_block() {
  return R"({"population":32,"generations":)" +
         std::to_string(kColdGenerations) +
         R"(,"seeds":["min-energy","max-utility"]})";
}

std::string delta_request(const std::string& tenant, std::uint64_t seed,
                          std::size_t add_tasks, bool warm) {
  return R"({"type":"delta","tenant":")" + tenant + R"(","base":)" +
         base_block(seed) + R"(,"mutations":[{"op":"add-tasks","count":)" +
         std::to_string(add_tasks) + "}]" +
         (warm ? R"(,"polish_generations":)" +
                     std::to_string(kPolishGenerations) +
                     R"(,"cold_fallback":false)"
               : "") +
         R"(,"nsga2":)" + nsga2_block() + "}";
}

double p95_us(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[(samples.size() - 1) * 95 / 100] * 1e6;
}

}  // namespace

EUS_BENCHMARK(serve_warm_loadgen,
              "warm-start archive payoff: p95 of warm delta repair+polish "
              "vs cold re-optimization at the same budget (EUS_SCALE)") {
  const auto scaled = static_cast<std::size_t>(
      static_cast<double>(16) * bench_scale() + 0.5);
  const std::size_t deltas = scaled < 3 ? 3 : scaled;
  const std::uint64_t seed = bench_seed();

  MetricsRegistry local_metrics;
  MetricsRegistry* metrics =
      ctx.metrics != nullptr ? ctx.metrics : &local_metrics;
  tenant::ArchiveStore archive({}, metrics);
  HandlerContext handler_ctx;
  handler_ctx.metrics = metrics;
  handler_ctx.archive = &archive;

  // Prime: one converged cold run archives the warm tenant's base front.
  const std::string prime =
      R"({"type":"allocate","mode":"nsga2","tenant":"warm","scenario":)" +
      base_block(seed) + R"(,"nsga2":)" + nsga2_block() + "}";
  const HandleResult primed = handle_allocate(
      parse_request_text(prime), handler_ctx, std::nullopt, 0.0);
  if (primed.code != kCodeOk) return 1;

  std::size_t failures = 0;
  const auto run = [&](const std::string& tenant, bool warm,
                       std::vector<double>& out) {
    for (std::size_t i = 0; i < deltas; ++i) {
      const ServeRequest request = parse_request_text(
          delta_request(tenant, seed, i + 1, warm));
      const Stopwatch clock;
      const HandleResult result =
          handle_delta(request, handler_ctx, std::nullopt, 0.0);
      out.push_back(clock.seconds());
      const util::JsonValue doc = util::parse_json(result.payload);
      const util::JsonValue* warmed = doc.get("warm");
      if (result.code != kCodeOk || warmed == nullptr ||
          warmed->boolean != warm) {
        ++failures;
      }
    }
  };

  // The warm tenant's deltas repair the archived base; the cold tenant has
  // no archive entry, so the same mutations re-optimize from scratch.
  std::vector<double> warm_s;
  std::vector<double> cold_s;
  run("warm", true, warm_s);
  run("cold", false, cold_s);

  const double warm_p95 = p95_us(std::move(warm_s));
  const double cold_p95 = p95_us(std::move(cold_s));
  const double speedup = warm_p95 > 0.0 ? cold_p95 / warm_p95 : 0.0;
  metrics->counter("warm.p95_us").add(static_cast<std::uint64_t>(warm_p95));
  metrics->counter("cold.p95_us").add(static_cast<std::uint64_t>(cold_p95));
  metrics->counter("warm.speedup_x10")
      .add(static_cast<std::uint64_t>(speedup * 10.0));

  return failures == 0 && speedup >= 10.0 ? 0 : 1;
}
