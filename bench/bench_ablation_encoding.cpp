// Encoding ablation (DESIGN.md): the paper's segment crossover swaps global
// scheduling orders between chromosomes, which can duplicate order values
// within one chromosome.  We treat orders as priorities with stable
// tie-breaks; the alternative repairs every offspring back to a strict
// permutation.  This bench compares the two readings.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_encoding, "priority encoding vs strict-permutation repair") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== scheduling-order encoding ablation (dataset 1, "
            << generations << " generations) ==\n";

  AsciiTable table({"encoding", "final HV (x1e9)", "max utility",
                    "min energy (MJ)", "wall time (s)"});

  std::vector<std::vector<EUPoint>> fronts;
  std::vector<double> times;
  for (const bool repair : {false, true}) {
    Nsga2Config config = bench::figure_config(bench_seed(), 100);
    config.repair_order_permutation = repair;
    Nsga2 ga(problem, config);
    ga.initialize({min_min_completion_time_allocation(scenario.system,
                                                      scenario.trace)});
    Stopwatch timer;
    ga.iterate(generations);
    times.push_back(timer.seconds());
    fronts.push_back(ga.front_points());
  }

  const EUPoint ref = enclosing_reference(fronts);
  const char* names[] = {"priority semantics (library default)",
                         "repair to strict permutation"};
  for (std::size_t i = 0; i < fronts.size(); ++i) {
    table.add_row({names[i],
                   format_double(hypervolume(fronts[i], ref) / 1e9, 3),
                   format_double(fronts[i].back().utility, 1),
                   format_double(fronts[i].front().energy / 1e6, 3),
                   format_double(times[i], 2)});
  }
  std::cout << table.render()
            << "\nBoth encodings evaluate identically (the evaluator breaks "
               "order ties by\ntask index); repair costs an extra O(T log T) "
               "per offspring and mainly\naffects how mutations redistribute "
               "priorities.  Similar fronts here mean\nthe paper's encoding "
               "ambiguity is benign.\n";
  return 0;
}
