// Tables I & II: the benchmark machines and programs behind the "real
// historical data", printed together with the reconstructed 5x9 ETC/EPC
// matrices and their heterogeneity (mvsk) signatures.

#include <iostream>

#include "benchkit/registry.hpp"
#include "data/historical.hpp"
#include "synth/moments.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(table1_table2_data, "Tables I & II machines/programs + reconstructed ETC/EPC matrices") {
  using namespace eus;

  std::cout << "== Table I — machines (designated by CPU) used in benchmark "
               "==\n";
  AsciiTable t1({"machine type", "category"});
  for (const auto& m : historical_machine_types()) {
    t1.add_row({m.name, to_string(m.category)});
  }
  std::cout << t1.render();

  std::cout << "\n== Table II — programs used in benchmark ==\n";
  AsciiTable t2({"task type", "category"});
  for (const auto& t : historical_task_types()) {
    t2.add_row({t.name, to_string(t.category)});
  }
  std::cout << t2.render();

  const auto print_matrix = [](const char* name, const Matrix& m,
                               const char* unit) {
    std::cout << "\n== reconstructed " << name << " matrix (" << unit
              << ") ==\n";
    std::vector<std::string> header = {"task \\ machine"};
    for (const auto& mt : historical_machine_types()) {
      // Short column labels.
      std::string label = mt.name;
      if (label.size() > 14) label = label.substr(label.size() - 14);
      header.push_back(label);
    }
    AsciiTable table(header);
    const auto& tasks = historical_task_types();
    for (std::size_t r = 0; r < m.rows(); ++r) {
      std::vector<std::string> row = {tasks[r].name};
      for (std::size_t c = 0; c < m.cols(); ++c) {
        row.push_back(format_double(m(r, c), 0));
      }
      table.add_row(row);
    }
    std::cout << table.render();
  };
  print_matrix("ETC", historical_etc(), "seconds");
  print_matrix("EPC", historical_epc(), "watts");

  // Heterogeneity signatures (the quantities §III-D2 preserves).
  std::cout << "\n== heterogeneity signatures ==\n";
  AsciiTable sig({"population", "mean", "cv", "skewness", "kurtosis"});
  const auto add_sig = [&](const std::string& name,
                           const std::vector<double>& values) {
    const Moments m = compute_moments(values);
    sig.add_row({name, format_double(m.mean, 2), format_double(m.cv, 3),
                 format_double(m.skewness, 3), format_double(m.kurtosis, 3)});
  };
  std::vector<double> etc_rows, epc_rows;
  for (std::size_t r = 0; r < 5; ++r) {
    etc_rows.push_back(historical_etc().row_mean_finite(r));
    epc_rows.push_back(historical_epc().row_mean_finite(r));
  }
  add_sig("ETC row averages (s)", etc_rows);
  add_sig("EPC row averages (W)", epc_rows);
  for (std::size_t c = 0; c < 9; ++c) {
    // Per-machine execution-time ratios, the §III-D2 step-2 population.
    std::vector<double> ratios;
    for (std::size_t r = 0; r < 5; ++r) {
      ratios.push_back(historical_etc()(r, c) / etc_rows[r]);
    }
    add_sig("ETC ratios @ " + historical_machine_types()[c].name, ratios);
  }
  std::cout << sig.render()
            << "\nNOTE: the 5x9 values are a documented reconstruction of "
               "the cited\nopenbenchmarking.org result (see DESIGN.md, "
               "substitution 1).\n";
  return 0;
}
