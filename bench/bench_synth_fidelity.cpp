// §III-D2 reproduction: quantify how well the synthetic-data generator
// preserves the heterogeneity (mvsk) signature of the real data, across
// many seeds and expansion sizes — the paper's claim that "two data sets
// that have similar heterogeneity characteristics would have similar values
// for these measures".

#include <iostream>

#include "benchkit/registry.hpp"
#include "data/historical.hpp"
#include "synth/generator.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(synth_fidelity, "SIII-D2 heterogeneity preservation across synthetic sizes") {
  using namespace eus;

  const SystemModel base = historical_system();
  const std::size_t trials = 20;

  std::cout << "== synthetic-data heterogeneity fidelity ==\n"
            << trials << " independent expansions per size; reporting the "
            << "mvsk of the synthetic ETC row averages vs the real ones\n\n";

  const Moments real = [&] {
    std::vector<double> avgs;
    for (std::size_t r = 0; r < base.num_task_types(); ++r) {
      avgs.push_back(base.etc().row_mean_finite(r));
    }
    return compute_moments(avgs);
  }();
  std::cout << "real signature: mean=" << format_double(real.mean, 1)
            << " cv=" << format_double(real.cv, 3)
            << " skew=" << format_double(real.skewness, 3)
            << " kurt=" << format_double(real.kurtosis, 3) << "\n\n";

  AsciiTable table({"new task types", "mean of means", "mean cv", "mean skew",
                    "mean kurt", "mean mvsk distance", "worst distance"});

  Rng rng(bench_seed());
  for (const std::size_t extra : {25UL, 50UL, 100UL}) {
    double sum_mean = 0.0, sum_cv = 0.0, sum_skew = 0.0, sum_kurt = 0.0;
    double sum_dist = 0.0, worst = 0.0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      ExpansionConfig cfg;
      cfg.additional_task_types = extra;
      std::vector<std::size_t> instances(base.num_machine_types() + 4, 1);
      Rng child = rng.split();
      const ExpandedSystem ex = expand_system(base, cfg, instances, child);
      const FidelityReport report =
          etc_fidelity(base, ex.model, base.num_machine_types());
      sum_mean += report.expanded_row_averages.mean;
      sum_cv += report.expanded_row_averages.cv;
      sum_skew += report.expanded_row_averages.skewness;
      sum_kurt += report.expanded_row_averages.kurtosis;
      sum_dist += report.distance;
      worst = std::max(worst, report.distance);
    }
    const auto n = static_cast<double>(trials);
    table.add_row({std::to_string(extra), format_double(sum_mean / n, 1),
                   format_double(sum_cv / n, 3),
                   format_double(sum_skew / n, 3),
                   format_double(sum_kurt / n, 3),
                   format_double(sum_dist / n, 3),
                   format_double(worst, 3)});
  }
  std::cout << table.render()
            << "\nLarger expansions average closer to the real signature "
               "(more draws from the\nsame Gram-Charlier density); distance "
               "0 would be a perfect match.\n";
  return 0;
}
