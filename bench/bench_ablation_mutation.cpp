// Mutation-probability ablation: the paper only says the probability was
// "selected by experimentation" — this bench *is* that experimentation.
// Sweeps the per-offspring mutation rate on dataset 1 at a fixed generation
// budget and reports final front quality.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_mutation, "mutation-rate sweep at short budgets") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== mutation-probability ablation (dataset 1, " << generations
            << " generations, min-energy seeded) ==\n";

  const std::vector<double> rates = {0.0, 0.05, 0.15, 0.25, 0.5, 0.8, 1.0};
  std::vector<std::vector<EUPoint>> fronts;

  Stopwatch timer;
  for (const double rate : rates) {
    Nsga2Config config = bench::figure_config(bench_seed(), 100);
    config.mutation_probability = rate;
    Nsga2 ga(problem, config);
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace)});
    ga.iterate(generations);
    fronts.push_back(ga.front_points());
    std::cout << "  rate " << rate << " done @ " << timer.seconds() << "s\n";
  }

  const EUPoint ref = enclosing_reference(fronts);
  AsciiTable table({"mutation probability", "final HV (x1e9)", "front size",
                    "max utility", "spread"});
  double best_hv = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double hv = hypervolume(fronts[i], ref);
    if (hv > best_hv) {
      best_hv = hv;
      best_idx = i;
    }
    table.add_row({format_double(rates[i], 2), format_double(hv / 1e9, 3),
                   std::to_string(fronts[i].size()),
                   format_double(fronts[i].back().utility, 1),
                   format_double(spread(fronts[i]), 3)});
  }
  std::cout << table.render()
            << "\nbest rate in this sweep: " << rates[best_idx]
            << " (the library default is 0.25)\n"
            << "Expected shape: zero mutation stalls (crossover alone "
               "cannot introduce new\nmachine assignments), while very high "
               "rates degrade convergence — a hump.\n";
  return 0;
}
