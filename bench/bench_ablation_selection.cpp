// Selection-operator ablation: the paper picks crossover parents uniformly
// at random (§IV-D), while Deb's original NSGA-II uses binary tournaments
// by crowded comparison.  Tournament pressure usually speeds convergence;
// uniform selection preserves diversity.  Measured on dataset 1.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_selection, "uniform parent selection vs crowded tournament") {
  using namespace eus;

  const auto checkpoints = scaled_checkpoints(
      {100, 1000, 10000}, 0.1 * bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== selection-operator ablation (dataset 1, checkpoints ";
  for (const auto c : checkpoints) std::cout << c << ' ';
  std::cout << ") ==\n";

  struct Variant {
    const char* name;
    SelectionMode mode;
  };
  const Variant variants[] = {
      {"uniform random (paper)", SelectionMode::kUniform},
      {"crowded binary tournament (Deb)", SelectionMode::kCrowdedTournament},
  };

  std::vector<std::vector<std::vector<EUPoint>>> results;  // [variant][ckpt]
  for (const auto& variant : variants) {
    Nsga2Config config = bench::figure_config(bench_seed(), 100);
    config.selection = variant.mode;
    Nsga2 ga(problem, config);
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace)});
    std::vector<std::vector<EUPoint>> per_ckpt;
    std::size_t done = 0;
    for (const std::size_t target : checkpoints) {
      ga.iterate(target - done);
      done = target;
      per_ckpt.push_back(ga.front_points());
    }
    results.push_back(std::move(per_ckpt));
  }

  std::vector<std::vector<EUPoint>> all;
  for (const auto& variant : results) {
    for (const auto& f : variant) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);

  AsciiTable table({"selection", "HV @" + std::to_string(checkpoints[0]),
                    "HV @" + std::to_string(checkpoints[1]),
                    "HV @" + std::to_string(checkpoints[2]),
                    "final spread"});
  for (std::size_t v = 0; v < results.size(); ++v) {
    std::vector<std::string> row = {variants[v].name};
    for (const auto& front : results[v]) {
      row.push_back(format_double(hypervolume(front, ref) / 1e9, 3));
    }
    row.push_back(format_double(spread(results[v].back()), 3));
    table.add_row(row);
  }
  std::cout << table.render()
            << "mutual final coverage: C(uniform, tournament) = "
            << coverage(results[0].back(), results[1].back())
            << ", C(tournament, uniform) = "
            << coverage(results[1].back(), results[0].back()) << '\n'
            << "\nExpected shape: tournament converges faster at early "
               "checkpoints; by the\nlate checkpoint the two meet — "
               "consistent with the paper getting away\nwith plain uniform "
               "selection.\n";
  return 0;
}
