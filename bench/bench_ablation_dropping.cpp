// Task-dropping ablation (§VII future work, implemented): in an overloaded
// trace some tasks finish after their utility has fully decayed — executing
// them burns energy for nothing.  Compare fronts with dropping disabled vs
// enabled at several thresholds.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_dropping, "dropping worthless tasks vs the front") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());

  std::cout << "== task-dropping ablation (dataset 1, " << generations
            << " generations each) ==\n";

  struct Variant {
    std::string name;
    bool drop;
    double threshold;
  };
  const std::vector<Variant> variants = {
      {"no dropping (paper evaluation)", false, 0.0},
      {"drop zero-utility tasks", true, 0.0},
      {"drop tasks earning <= 1.0", true, 1.0},
  };

  std::vector<std::vector<EUPoint>> fronts;
  AsciiTable table({"policy", "min energy (MJ)", "max utility",
                    "dropped @ max-utility point"});
  for (const auto& variant : variants) {
    EvaluatorOptions opts;
    opts.drop_worthless_tasks = variant.drop;
    opts.drop_threshold = variant.threshold;
    const UtilityEnergyProblem problem(scenario.system, scenario.trace, opts);

    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_min_completion_time_allocation(scenario.system,
                                                      scenario.trace)});
    ga.iterate(generations);
    fronts.push_back(ga.front_points());

    // Re-evaluate the max-utility individual for its drop count.
    const auto front_individuals = ga.front();
    const Evaluation best = problem.evaluator().evaluate(
        front_individuals.back().genome);
    table.add_row({variant.name,
                   format_double(fronts.back().front().energy / 1e6, 3),
                   format_double(fronts.back().back().utility, 1),
                   std::to_string(best.dropped)});
  }
  const EUPoint ref = enclosing_reference(fronts);
  std::cout << table.render() << "hypervolumes (x1e9): ";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::cout << format_double(hypervolume(fronts[i], ref) / 1e9, 3) << ' ';
  }
  std::cout << "\n\nExpected shape: dropping moves the whole front left "
               "(same utility for\nless energy) because worthless work is "
               "never executed — the gain the\npaper anticipates from this "
               "future-work feature.\n";
  return 0;
}
