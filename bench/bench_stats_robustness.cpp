// Statistical robustness of the §VI conclusions: repeat the dataset-1
// seeded-population study across several independent GA seeds and report
// mean ± stddev of each population's final normalized hypervolume plus the
// seeded-beats-random margin.  Guards against single-seed flukes — the
// paper reports one run per configuration.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(stats_robustness, "SVI conclusions across independent GA seeds") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.05).front()) *
      bench_scale());
  const std::size_t repeats = 5;

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  const auto specs = paper_population_specs();

  std::cout << "== robustness study (dataset 1, " << generations
            << " generations x " << repeats << " GA seeds) ==\n";

  // hv[population][repeat]
  std::vector<std::vector<double>> hv(specs.size());
  Stopwatch timer;
  StudyEngineConfig engine_config;
  engine_config.threads = bench_threads();
  StudyEngine engine(engine_config);
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    Nsga2Config config = bench::figure_config(bench_seed() + 1000 * rep, 100);
    const StudyResult study =
        engine.run(problem, config, {generations}, specs);
    std::vector<std::vector<EUPoint>> all;
    for (std::size_t p = 0; p < specs.size(); ++p) {
      all.push_back(study.final_front(p));
    }
    const EUPoint ref = enclosing_reference(all);
    double best = 0.0;
    for (const auto& front : all) {
      best = std::max(best, hypervolume(front, ref));
    }
    for (std::size_t p = 0; p < specs.size(); ++p) {
      hv[p].push_back(hypervolume(all[p], ref) / best);
    }
    std::cout << "  repeat " << rep + 1 << "/" << repeats << " done @ "
              << timer.seconds() << "s\n";
  }

  AsciiTable table({"population", "mean normalized HV", "stddev", "min",
                    "max"});
  std::vector<double> means(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    double mean = 0.0;
    for (const double v : hv[p]) mean += v;
    mean /= static_cast<double>(repeats);
    double var = 0.0;
    double lo = hv[p][0], hi = hv[p][0];
    for (const double v : hv[p]) {
      var += (v - mean) * (v - mean);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    var /= static_cast<double>(repeats);
    means[p] = mean;
    table.add_row({specs[p].name, format_double(mean, 3),
                   format_double(std::sqrt(var), 3), format_double(lo, 3),
                   format_double(hi, 3)});
  }
  std::cout << table.render();

  // Seeded-vs-random margin across repeats.
  std::size_t seeded_wins = 0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    double best_seeded = 0.0;
    for (std::size_t p = 0; p + 1 < specs.size(); ++p) {
      best_seeded = std::max(best_seeded, hv[p][rep]);
    }
    if (best_seeded >= hv.back()[rep]) ++seeded_wins;
  }
  std::cout << "repeats where a seeded population matched or beat random: "
            << seeded_wins << "/" << repeats << '\n'
            << "\nExpected shape: small stddevs (conclusions are "
               "seed-stable) and the seeded\npopulations winning every "
               "repeat at short budgets.\n";
  return 0;
}
