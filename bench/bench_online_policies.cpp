// Online-policy study (the paper's stated downstream use, §I/§VI): run
// dynamic, no-future-knowledge mapping policies over dataset 1's trace and
// compare them against the offline NSGA-II Pareto front.  The budget-paced
// policy takes its energy cap from the offline analysis — the knee of the
// front — exactly the workflow the paper proposes ("energy constraints
// could then be used in conjunction with a separate online dynamic utility
// maximization heuristic").

#include <iostream>
#include <memory>

#include "common.hpp"
#include "online/simulator.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(online_policies, "online dispatchers vs the offline front") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== online policies vs offline Pareto front (dataset 1) ==\n"
            << "offline reference: NSGA-II, " << generations
            << " generations, all four seeds\n";

  // Offline reference front.
  Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
  std::vector<Allocation> seeds;
  for (const SeedHeuristic h : all_seed_heuristics()) {
    seeds.push_back(make_seed(h, scenario.system, scenario.trace));
  }
  ga.initialize(seeds);
  ga.iterate(generations);
  const auto front = ga.front_points();
  const KneeAnalysis knee = analyze_utility_per_energy(front);

  std::cout << "offline front: energy " << front.front().energy / 1e6 << ".."
            << front.back().energy / 1e6 << " MJ, utility "
            << front.front().utility << ".." << front.back().utility
            << "; knee at " << knee.peak.energy / 1e6 << " MJ\n\n";

  // Online runs.
  struct Row {
    std::string name;
    EUPoint point;
    std::size_t dropped;
  };
  std::vector<Row> rows;
  const auto run = [&](OnlinePolicy& policy, const OnlineOptions& opts,
                       const std::string& label) {
    const OnlineResult r =
        simulate_online(scenario.system, scenario.trace, policy, opts);
    rows.push_back({label, {r.energy, r.utility}, r.dropped});
  };

  OnlineMinEnergy min_energy;
  OnlineMaxUtility max_utility;
  OnlineMaxUtilityPerEnergy upe;
  OnlineMinCompletionTime mct;
  BudgetPacedUtility paced;

  run(min_energy, {}, min_energy.name());
  run(max_utility, {}, max_utility.name());
  run(upe, {}, upe.name());
  run(mct, {}, mct.name());
  OnlineOptions knee_budget;
  knee_budget.energy_budget = knee.peak.energy;
  knee_budget.allow_dropping = true;
  run(paced, knee_budget, "budget-paced @ knee budget");
  OnlineOptions tight;
  tight.energy_budget = 0.85 * knee.peak.energy;
  tight.allow_dropping = true;
  run(paced, tight, "budget-paced @ 85% knee budget");

  // How does each online point compare to the offline front?
  AsciiTable table({"policy", "energy (MJ)", "utility", "dropped",
                    "covered by offline front", "utility gap to front at "
                    "same energy"});
  for (const auto& row : rows) {
    // Best offline utility at <= this energy.
    double best_offline = 0.0;
    for (const auto& p : front) {
      if (p.energy <= row.point.energy + 1e-9) best_offline = p.utility;
    }
    const bool covered = coverage(front, {row.point}) > 0.5;
    const double gap = best_offline > 0.0
                           ? 100.0 * (best_offline - row.point.utility) /
                                 best_offline
                           : 0.0;
    table.add_row({row.name, format_double(row.point.energy / 1e6, 3),
                   format_double(row.point.utility, 1),
                   std::to_string(row.dropped),
                   covered ? "yes" : "NO (beats/escapes it)",
                   format_double(gap, 1) + "%"});
  }
  std::cout << table.render()
            << "\nExpected shape: every online point is weakly dominated by "
               "the offline front\n(the front had full future knowledge and "
               "free task reordering); the\nbudget-paced policy lands near "
               "the knee's energy while recovering most of\nthe knee's "
               "utility — the administrator workflow, closed end-to-end.\n";
  return 0;
}
