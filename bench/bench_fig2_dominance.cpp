// Figure 2: the solution-dominance illustration.  First the paper's
// three-point example (A dominates B; A and C incomparable), then the same
// relations computed on a live NSGA-II population so the rank structure of
// a real run is visible.

#include <iostream>

#include "benchkit/registry.hpp"
#include "core/nondominated_sort.hpp"
#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "util/ascii_plot.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

EUS_BENCHMARK(fig2_dominance, "Figure 2 dominance example + live population rank structure") {
  using namespace eus;

  std::cout << "== Figure 2 — solution dominance ==\n";
  const EUPoint a{5.0, 10.0};
  const EUPoint b{8.0, 7.0};
  const EUPoint c{3.0, 6.0};

  AsciiTable table({"pair", "relation"});
  const auto relation = [](const EUPoint& x, const EUPoint& y) {
    if (dominates(x, y)) return std::string("first dominates second");
    if (dominates(y, x)) return std::string("second dominates first");
    return std::string("incomparable (both may sit on the front)");
  };
  table.add_row({"A (5 MJ, 10 util) vs B (8 MJ, 7 util)", relation(a, b)});
  table.add_row({"A (5 MJ, 10 util) vs C (3 MJ, 6 util)", relation(a, c)});
  table.add_row({"B (8 MJ, 7 util) vs C (3 MJ, 6 util)", relation(b, c)});
  std::cout << table.render();

  PlotSeries pts{"solutions", 'A', {a.energy}, {a.utility}};
  PlotSeries pb{"B (dominated by A)", 'B', {b.energy}, {b.utility}};
  PlotSeries pc{"C (incomparable with A)", 'C', {c.energy}, {c.utility}};
  PlotOptions opts;
  opts.title = "\nobjective space (good = upper left)";
  opts.x_label = "energy consumed";
  opts.y_label = "utility earned";
  opts.width = 48;
  opts.height = 14;
  std::cout << render_scatter({pts, pb, pc}, opts);

  // Live population: evolve briefly, then report the rank histogram and the
  // paper's "1 + dominating solutions" rank for a few members.
  std::cout << "\n== dominance structure of a live population ==\n";
  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  Nsga2Config config;
  config.population_size = 100;
  config.seed = bench_seed();
  Nsga2 ga(problem, config);
  ga.initialize({});
  ga.iterate(30);

  std::vector<EUPoint> points;
  for (const auto& ind : ga.population()) points.push_back(ind.objectives);
  const SortedFronts sorted = nondominated_sort(points);
  const auto counts = domination_counts(points);

  AsciiTable hist({"front rank (0 = Pareto set)", "solutions"});
  for (std::size_t r = 0; r < sorted.fronts.size(); ++r) {
    hist.add_row({std::to_string(r), std::to_string(sorted.fronts[r].size())});
  }
  std::cout << hist.render();

  std::size_t max_dominators = 0;
  for (const auto n : counts) max_dominators = std::max(max_dominators, n);
  std::cout << "most-dominated solution is dominated by " << max_dominators
            << " others (paper rank " << max_dominators + 1 << ")\n"
            << "rank-0 (nondominated) solutions: " << sorted.fronts[0].size()
            << " of " << points.size() << '\n';
  return 0;
}
