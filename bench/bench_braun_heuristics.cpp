// Braun-et-al. heuristic comparison (the paper's ref [24] lineage): the
// four §V-B seeds plus MET / OLB / Max-Min / Sufferage, each evaluated
// standalone on dataset 1 against utility, energy, and makespan — and then
// scored as NSGA-II seeds (how much front does each buy at a small budget?).

#include <iostream>

#include "common.hpp"
#include "heuristics/braun.hpp"
#include "pareto/front.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(braun_heuristics, "ref-[24] heuristics standalone and as seeds") {
  using namespace eus;

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  const Evaluator& ev = problem.evaluator();

  std::cout << "== eight mapping heuristics, standalone (dataset 1) ==\n";

  struct Entry {
    std::string name;
    Allocation allocation;
  };
  std::vector<Entry> entries;
  for (const SeedHeuristic h : all_seed_heuristics()) {
    entries.push_back(
        {to_string(h), make_seed(h, scenario.system, scenario.trace)});
  }
  for (const BatchHeuristic h : all_batch_heuristics()) {
    entries.push_back(
        {to_string(h), make_batch_seed(h, scenario.system, scenario.trace)});
  }

  AsciiTable table({"heuristic", "utility", "energy (MJ)", "makespan (s)",
                    "utility/MJ"});
  std::vector<EUPoint> points;
  for (const auto& e : entries) {
    const Evaluation r = ev.evaluate(e.allocation);
    points.push_back({r.energy, r.utility});
    table.add_row({e.name, format_double(r.utility, 1),
                   format_double(r.energy / 1e6, 3),
                   format_double(r.makespan, 0),
                   format_double(r.utility / (r.energy / 1e6), 1)});
  }
  std::cout << table.render();

  // Which heuristics are themselves nondominated in (energy, utility)?
  const auto idx = nondominated_indices(points);
  std::cout << "nondominated standalone heuristics:";
  for (const std::size_t i : idx) std::cout << ' ' << entries[i].name;
  std::cout << "\n\n";

  // As GA seeds at a small budget.
  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({1000}, 0.1).front()) *
      bench_scale());
  std::cout << "== the same heuristics as NSGA-II seeds (" << generations
            << " generations) ==\n";
  std::vector<std::vector<EUPoint>> fronts;
  for (const auto& e : entries) {
    Nsga2 ga(problem, bench::figure_config(bench_seed(), 60));
    ga.initialize({e.allocation});
    ga.iterate(generations);
    fronts.push_back(ga.front_points());
  }
  const EUPoint ref = enclosing_reference(fronts);
  AsciiTable league({"seed", "front HV (x1e9)", "min energy (MJ)",
                     "max utility"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    league.add_row({entries[i].name,
                    format_double(hypervolume(fronts[i], ref) / 1e9, 3),
                    format_double(fronts[i].front().energy / 1e6, 3),
                    format_double(fronts[i].back().utility, 1)});
  }
  std::cout << league.render()
            << "\nExpected shape: min-energy anchors the lowest floor; "
               "min-min/sufferage buy\nthe most utility-side front; MET "
               "overloads its favorite machines and OLB\nignores speed — "
               "both seed poorly, which is why the paper picked the four\n"
               "it did.\n";
  return 0;
}
