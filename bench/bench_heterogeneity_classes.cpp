// Heterogeneity-class study (extends the paper via its ref [15]): the same
// bi-objective analysis on the four canonical CVB ETC classes —
// {high,low} task heterogeneity x {high,low} machine heterogeneity.
// Machine heterogeneity is what creates room to trade energy for utility:
// with homogeneous machines (lo machine CV) every mapping costs roughly
// the same, so fronts collapse; with high machine CV the front widens.

#include <iostream>
#include <string>

#include "common.hpp"
#include "synth/etc_generators.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(heterogeneity_classes, "front geometry across CVB heterogeneity classes") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  std::cout << "== heterogeneity-class study (CVB ETC/EPC, 20 task types x "
               "12 machines, 250 tasks, " << generations
            << " generations) ==\n";

  Rng master(bench_seed());
  AsciiTable table({"class", "machine het.", "task het.",
                    "front width (energy max/min)", "front height "
                    "(utility max/min)", "U/E peak ratio"});

  for (const HeterogeneityClass cls :
       {HeterogeneityClass::kHiHi, HeterogeneityClass::kHiLo,
        HeterogeneityClass::kLoHi, HeterogeneityClass::kLoLo}) {
    Rng rng = master.split();
    const Matrix etc = cvb_etc_for_class(cls, 20, 12, 120.0, rng);
    // EPC from the same class at wattage scale; energy heterogeneity
    // mirrors execution heterogeneity.
    const Matrix epc = cvb_etc_for_class(cls, 20, 12, 140.0, rng);
    const EtcHeterogeneity het = measure_heterogeneity(etc);

    std::vector<TaskType> tasks;
    for (std::size_t t = 0; t < 20; ++t) {
      tasks.push_back({std::string{"t"} + std::to_string(t), Category::kGeneral, -1});
    }
    std::vector<MachineType> types;
    std::vector<Machine> machines;
    for (std::size_t m = 0; m < 12; ++m) {
      types.push_back({std::string{"m"} + std::to_string(m), Category::kGeneral});
      machines.push_back({static_cast<int>(m), std::string{"m"} + std::to_string(m)});
    }
    SystemModel system(std::move(tasks), std::move(types),
                       std::move(machines), etc, epc);

    const Scenario scenario = make_custom_scenario(
        to_string(cls), std::move(system), 250, 900.0, master.split()());
    const UtilityEnergyProblem problem(scenario.system, scenario.trace);

    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                   min_min_completion_time_allocation(scenario.system,
                                                      scenario.trace)});
    ga.iterate(generations);
    const auto front = ga.front_points();
    const KneeAnalysis knee = analyze_utility_per_energy(front);

    table.add_row(
        {to_string(cls), format_double(het.machine_heterogeneity, 3),
         format_double(het.task_heterogeneity, 3),
         format_double(front.back().energy / front.front().energy, 3),
         front.front().utility > 0.0
             ? format_double(front.back().utility / front.front().utility, 3)
             : "inf",
         format_double(knee.peak_ratio * 1e6, 1)});
  }
  std::cout << table.render()
            << "\nExpected shape: hi machine heterogeneity (hi-hi, lo-hi) "
               "yields wide fronts\n(large max/min energy ratios) — real "
               "trade-offs to analyze; lo machine\nheterogeneity collapses "
               "the front toward a point, regardless of task\n"
               "heterogeneity.\n";
  return 0;
}
