// Figure 6: Pareto fronts for the largest data set (dataset 3: 4000 tasks
// over one hour on the Table III suite), five seeded populations, through
// 1k / 10k / 100k / 1M NSGA-II iterations.
//
// Expected shape (paper §VI): the problem is big enough that fronts are
// still converging at the final checkpoint, so the seeded populations
// dominate the all-random control throughout — the paper's headline
// argument for seeding.

#include "common.hpp"

EUS_BENCHMARK(fig6_dataset3, "Figure 6 five-seed front study on dataset 3 (4000 tasks)") {
  using namespace eus;
  bench::FigureSpec spec;
  spec.figure = "Figure 6";
  spec.paper_iters = {1000, 10000, 100000, 1000000};
  spec.default_scale = 0.00125;  // 2 / 13 / 125 / 1,250 by default
  const Scenario scenario = make_dataset3(bench_seed());
  const StudyResult study = bench::run_figure(ctx, spec, scenario);

  // Quantify the seeded-dominates-random claim at the final checkpoint.
  std::cout << "\nseeded-vs-random coverage at the final checkpoint "
               "(C(seeded, random)):\n";
  const auto& random_front = study.final_front(study.fronts.size() - 1);
  for (std::size_t p = 0; p + 1 < study.fronts.size(); ++p) {
    std::cout << "  " << study.population_names[p] << ": "
              << coverage(study.final_front(p), random_front) << '\n';
  }
  return 0;
}
