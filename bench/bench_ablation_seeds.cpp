// Seed ablation: all six populations (four single seeds, the all-four-seeds
// combination the paper mentions but does not plot, and the all-random
// control) on dataset 1.  Verifies §VI's remark that the all-four-seeds
// population "performed similarly to the min-energy seeded population".

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

EUS_BENCHMARK(ablation_seeds, "all-four-seeds vs min-energy-seeded populations") {
  using namespace eus;

  const double scale = 0.1 * bench_scale();
  const auto checkpoints = scaled_checkpoints({100, 1000, 10000}, scale);

  const Scenario scenario = make_dataset1(bench_seed());
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  std::cout << "== seed ablation (dataset 1, checkpoints ";
  for (const auto c : checkpoints) std::cout << c << ' ';
  std::cout << ") ==\n";

  Stopwatch timer;
  StudyEngineConfig engine_config;
  engine_config.threads = bench_threads();
  StudyEngine engine(engine_config);
  const StudyResult study = engine.run(
      problem, bench::figure_config(bench_seed(), 100), checkpoints,
      extended_population_specs());

  std::vector<std::vector<EUPoint>> all;
  for (const auto& per_pop : study.fronts) {
    for (const auto& f : per_pop) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);

  AsciiTable table({"population", "min energy (MJ)", "max utility",
                    "final HV (x1e9)", "spread"});
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    const auto& front = study.final_front(p);
    table.add_row({study.population_names[p],
                   format_double(front.front().energy / 1e6, 3),
                   format_double(front.back().utility, 1),
                   format_double(hypervolume(front, ref) / 1e9, 3),
                   format_double(spread(front), 3)});
  }
  std::cout << table.render();

  // The paper's specific claim: all-four-seeds ~ min-energy-seeded.
  const auto& min_e = study.final_front(0);
  const auto& all4 = study.final_front(5);
  std::cout << "\nall-four-seeds vs min-energy-seeded:\n"
            << "  C(all-four, min-energy) = " << coverage(all4, min_e) << '\n'
            << "  C(min-energy, all-four) = " << coverage(min_e, all4) << '\n'
            << "  min-energy floors: " << min_e.front().energy / 1e6
            << " MJ vs " << all4.front().energy / 1e6 << " MJ\n"
            << "(mutual coverage near symmetric + matching floors == the "
               "paper's 'performed similarly')\n"
            << "\nwall time: " << timer.seconds() << " s\n";
  return 0;
}
