// Arrival-process ablation (beyond the paper): the paper models Poisson
// arrivals; operational traces are burstier.  Same dataset-1 system, same
// task mix and count, three arrival processes — how much does burstiness
// reshape the utility/energy front?

#include <iostream>

#include "common.hpp"
#include "data/historical.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

EUS_BENCHMARK(ablation_arrivals, "arrival-process burstiness with the task sequence fixed") {
  using namespace eus;

  const auto generations = static_cast<std::size_t>(
      static_cast<double>(scaled_checkpoints({10000}, 0.1).front()) *
      bench_scale());

  const SystemModel system = historical_system();
  const TufClassLibrary tufs = standard_tuf_classes(2.0 * 900.0);

  std::cout << "== arrival-process ablation (250 tasks / 15 min, "
            << generations << " generations each) ==\n";

  struct Variant {
    ArrivalProcess process;
    double burst_factor;
  };
  const Variant variants[] = {
      {ArrivalProcess::kPeriodic, 0.0},
      {ArrivalProcess::kPoisson, 0.0},
      {ArrivalProcess::kBursty, 8.0},
      {ArrivalProcess::kBursty, 25.0},
  };

  // One fixed (type, TUF) sequence; variants differ ONLY in arrival times,
  // so energy floors and utility bounds stay comparable.
  Rng base_rng(bench_seed() + 5);
  TraceConfig base_cfg;
  base_cfg.num_tasks = 250;
  base_cfg.window_seconds = 900.0;
  const Trace base_trace = generate_trace(system, tufs, base_cfg, base_rng);

  AsciiTable table({"arrivals", "interarrival cv", "min energy (MJ)",
                    "max utility", "% of utility bound", "knee utility/MJ"});
  std::vector<std::vector<EUPoint>> fronts;
  for (const auto& variant : variants) {
    Rng rng(bench_seed() + 9);
    std::vector<double> times;
    switch (variant.process) {
      case ArrivalProcess::kPoisson:
        times = poisson_arrivals(250, 900.0, rng);
        break;
      case ArrivalProcess::kBursty:
        times = bursty_arrivals(250, 900.0, variant.burst_factor, rng);
        break;
      case ArrivalProcess::kPeriodic:
        times = periodic_arrivals(250, 900.0);
        break;
    }
    std::vector<TaskInstance> tasks = base_trace.tasks();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].arrival = times[i];
    }
    const Trace trace(std::move(tasks), tufs);

    const WorkloadAnalysis load = analyze_workload(system, trace);
    const ObjectiveBounds bounds = compute_bounds(system, trace);

    const UtilityEnergyProblem problem(system, trace);
    Nsga2 ga(problem, bench::figure_config(bench_seed(), 100));
    ga.initialize({min_energy_allocation(system, trace),
                   min_min_completion_time_allocation(system, trace)});
    ga.iterate(generations);

    const auto front = ga.front_points();
    fronts.push_back(front);
    const KneeAnalysis knee = analyze_utility_per_energy(front);

    std::string label = to_string(variant.process);
    if (variant.process == ArrivalProcess::kBursty) {
      label += " x" + format_double(variant.burst_factor, 0);
    }
    table.add_row(
        {label, format_double(load.cv_interarrival, 2),
         format_double(front.front().energy / 1e6, 3),
         format_double(front.back().utility, 1),
         format_double(100.0 * front.back().utility /
                           bounds.utility_upper_contention_free,
                       1) +
             "%",
         format_double(knee.peak_ratio * 1e6, 1)});
  }
  std::cout << table.render()
            << "\nExpected shape: the energy floor is arrival-independent "
               "(energy ignores\ntiming), but burstier arrivals concentrate "
               "deadline pressure — queues form\ninside bursts, so the "
               "achievable utility and the efficiency peak both sag\nas "
               "interarrival CV grows; periodic arrivals are the easiest "
               "workload.\n";
  return 0;
}
