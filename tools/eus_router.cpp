// eus_router — the fleet front end.  Listens on loopback, speaks the same
// length-prefixed JSON frames as eus_served (docs/serving.md), and forwards
// allocate requests to a fleet of eus_served backends described by a JSON
// fleet config (docs/fleet.md): capability-tag eligibility, a pluggable
// routing policy (min-min / max-upe / round-robin), consistent-hash cache
// affinity for nsga2 and pareto-query requests, health-checked failover
// with a single retry, and a live admin plane (enable-backend,
// disable-backend, fleet-reload, catalog-reload).
//
//   eus_router --fleet fleet.json               # port EUS_SERVE_PORT/7461
//   eus_router --fleet fleet.json --policy max-upe --port 0
//   EUS_RUNLOG=router.jsonl eus_router --fleet fleet.json
//
// SIGINT/SIGTERM drain gracefully: stop accepting, answer every in-flight
// proxied request, then exit 0.
//
// Exit codes: 0 clean shutdown, 1 startup failure, 2 usage error.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "fleet/config.hpp"
#include "fleet/router.hpp"
#include "util/env.hpp"

#ifndef EUS_VERSION
#define EUS_VERSION "0.0.0"
#endif

namespace {

using namespace eus;
using namespace eus::fleet;

constexpr int kExitOk = 0;
constexpr int kExitStartupFailure = 1;
constexpr int kExitUsage = 2;

struct CliOptions {
  std::uint16_t port = serve_port();
  std::string fleet_path;
  RoutePolicy policy = RoutePolicy::kMinMin;
  double health_period_s = 2.0;
  double probe_timeout_ms = 1000.0;
  double max_backoff_s = 30.0;
  std::optional<std::string> runlog = env_string("EUS_RUNLOG");
};

void print_usage(std::ostream& out) {
  out << "usage: eus_router --fleet <file> [options]\n"
         "  --fleet <file>       fleet config JSON (required):\n"
         "                       {\"backends\": [{\"name\", \"port\",\n"
         "                       \"capabilities\"?, \"speed_factor\"?,\n"
         "                       \"watts\"?, \"max_in_flight\"?, "
         "\"enabled\"?}]}\n"
         "  --port <n>           listen port on 127.0.0.1 (0 = ephemeral;\n"
         "                       default EUS_SERVE_PORT or 7461)\n"
         "  --policy <p>         min-min | max-upe | round-robin\n"
         "                       (default min-min)\n"
         "  --health-period <s>  seconds between healthz probes; 0 disables\n"
         "                       active probing (default 2)\n"
         "  --probe-timeout <ms> per-probe budget (default 1000)\n"
         "  --max-backoff <s>    probe backoff cap for down backends\n"
         "                       (default 30)\n"
         "  --runlog <path>      JSONL request log (default EUS_RUNLOG)\n"
         "  --version            print the version and exit\n"
         "  -h, --help           this text\n"
         "\n"
         "The fleet is live-tunable without a restart: `eus_client admin\n"
         "enable-backend|disable-backend <name>` and `eus_client admin\n"
         "fleet-reload --fleet <file>`; see docs/fleet.md.\n";
}

std::optional<double> parse_seconds(const char* text) {
  char* end = nullptr;
  const double s = std::strtod(text, &end);
  if (end == text || *end != '\0' || s < 0.0) return std::nullopt;
  return s;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "eus_router: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  const auto seconds_flag = [&](int& i, const char* flag,
                                double& out) -> bool {
    const char* v = value_of(i, flag);
    if (v == nullptr) return false;
    const std::optional<double> s = parse_seconds(v);
    if (!s) {
      std::cerr << "eus_router: " << flag
                << " wants a non-negative number, got '" << v << "'\n";
      return false;
    }
    out = *s;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fleet") {
      const char* v = value_of(i, "--fleet");
      if (v == nullptr) return std::nullopt;
      opts.fleet_path = v;
    } else if (arg == "--port") {
      const char* v = value_of(i, "--port");
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 65535) {
        std::cerr << "eus_router: --port wants 0..65535, got '" << v
                  << "'\n";
        return std::nullopt;
      }
      opts.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--policy") {
      const char* v = value_of(i, "--policy");
      if (v == nullptr) return std::nullopt;
      const std::optional<RoutePolicy> p = policy_from_slug(v);
      if (!p) {
        std::cerr << "eus_router: --policy wants min-min|max-upe|"
                     "round-robin, got '"
                  << v << "'\n";
        return std::nullopt;
      }
      opts.policy = *p;
    } else if (arg == "--health-period") {
      if (!seconds_flag(i, "--health-period", opts.health_period_s)) {
        return std::nullopt;
      }
    } else if (arg == "--probe-timeout") {
      if (!seconds_flag(i, "--probe-timeout", opts.probe_timeout_ms)) {
        return std::nullopt;
      }
    } else if (arg == "--max-backoff") {
      if (!seconds_flag(i, "--max-backoff", opts.max_backoff_s)) {
        return std::nullopt;
      }
    } else if (arg == "--runlog") {
      const char* v = value_of(i, "--runlog");
      if (v == nullptr) return std::nullopt;
      opts.runlog = v;
    } else if (arg == "--version") {
      std::cout << "eus_router " << EUS_VERSION << '\n';
      std::exit(kExitOk);
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else {
      std::cerr << "eus_router: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.fleet_path.empty()) {
    std::cerr << "eus_router: --fleet <file> is required\n";
    return std::nullopt;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const CliOptions& opts = *parsed;

  ::signal(SIGPIPE, SIG_IGN);
  // Block the shutdown signals before any thread exists so every thread
  // inherits the mask and sigwait below is the single consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    RouterConfig config;
    config.port = opts.port;
    config.fleet = load_fleet_config(opts.fleet_path);
    config.policy = opts.policy;
    config.health_period_s = opts.health_period_s;
    config.probe_timeout_ms = opts.probe_timeout_ms;
    config.max_backoff_s = opts.max_backoff_s;

    std::optional<serve::RequestLog> log;
    if (opts.runlog && !opts.runlog->empty()) {
      log.emplace(*opts.runlog);
      config.log = &*log;
    }
    SharedCatalog catalog;
    config.catalog = &catalog;

    Router router(std::move(config));
    router.start();
    std::cout << "eus_router " << EUS_VERSION << " listening on 127.0.0.1:"
              << router.port() << " (policy "
              << to_string(router.policy()) << ", backends "
              << router.backend_info().size() << ", health period "
              << opts.health_period_s << " s)" << std::endl;

    int signo = 0;
    while (sigwait(&mask, &signo) != 0) {
    }
    std::cout << "eus_router: received "
              << (signo == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining" << std::endl;
    router.request_stop();
    router.stop();
    std::cout << "eus_router: drained, bye" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "eus_router: " << e.what() << '\n';
    return kExitStartupFailure;
  }
  return kExitOk;
}
