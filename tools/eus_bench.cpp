// eus_bench — the unified benchmark runner.  Every bench/bench_*.cpp
// registers one scenario (EUS_BENCHMARK); this binary lists, filters and
// runs them with shared warmup/repetition/timing machinery, writes one
// BENCH_results.json, and optionally gates against committed baselines.
//
//   eus_bench --list
//   EUS_SCALE=0.001 eus_bench --filter 'fig' --reps 5
//   eus_bench --compare bench/baselines.json --tolerance-pct 40
//   eus_bench --compare bench/baselines.json --update-baselines
//
// Exit codes: 0 success, 1 baseline regression, 2 usage error,
// 3 scenario failure.  EXPERIMENTS.md documents the JSON schemas.

#include <cstdlib>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "benchkit/compare.hpp"
#include "benchkit/json_value.hpp"
#include "benchkit/registry.hpp"
#include "benchkit/results.hpp"
#include "benchkit/runner.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

using namespace eus;
using namespace eus::benchkit;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;
constexpr int kExitScenarioFailure = 3;

struct CliOptions {
  bool list = false;
  bool verbose = false;
  bool update_baselines = false;
  std::string filter;
  std::string out_path = "BENCH_results.json";
  std::optional<std::string> compare_path;
  double tolerance_pct = 25.0;
  std::size_t warmup = 1;
  std::size_t repetitions = 3;
};

void print_usage(std::ostream& out) {
  out << "usage: eus_bench [options]\n"
         "  --list                 print every registered scenario and exit\n"
         "  --filter <regex>       run only scenarios whose name matches\n"
         "  --warmup <n>           untimed runs per scenario (default 1)\n"
         "  --reps <n>             timed repetitions per scenario (default "
         "3)\n"
         "  --out <path>           results file (default BENCH_results.json; "
         "'off' disables)\n"
         "  --compare <path>       gate against a baselines file; exit 1 on "
         "regression\n"
         "  --tolerance-pct <x>    default tolerance band for --compare "
         "(default 25)\n"
         "  --update-baselines     rewrite the --compare file (default "
         "bench/baselines.json)\n"
         "                         from this run instead of gating\n"
         "  --verbose              stream scenario output instead of "
         "swallowing it\n"
         "  -h, --help             this text\n"
         "\n"
         "Scenario workloads honor EUS_SCALE / EUS_SEED / EUS_THREADS / "
         "EUS_CACHE /\nEUS_RUNLOG exactly as the former standalone binaries "
         "did.\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "eus_bench: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--update-baselines") {
      opts.update_baselines = true;
    } else if (arg == "--filter") {
      const char* v = value_of(i, "--filter");
      if (v == nullptr) return std::nullopt;
      opts.filter = v;
    } else if (arg == "--out") {
      const char* v = value_of(i, "--out");
      if (v == nullptr) return std::nullopt;
      opts.out_path = v;
    } else if (arg == "--compare") {
      const char* v = value_of(i, "--compare");
      if (v == nullptr) return std::nullopt;
      opts.compare_path = v;
    } else if (arg == "--tolerance-pct") {
      const char* v = value_of(i, "--tolerance-pct");
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      opts.tolerance_pct = std::strtod(v, &end);
      if (end == v || *end != '\0' || opts.tolerance_pct < 0.0) {
        std::cerr << "eus_bench: --tolerance-pct wants a non-negative "
                     "number, got '"
                  << v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--warmup" || arg == "--reps") {
      const char* v = value_of(i, arg.c_str());
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::cerr << "eus_bench: " << arg
                  << " wants a non-negative integer, got '" << v << "'\n";
        return std::nullopt;
      }
      (arg == "--warmup" ? opts.warmup : opts.repetitions) =
          static_cast<std::size_t>(n);
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else {
      std::cerr << "eus_bench: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.repetitions == 0) {
    std::cerr << "eus_bench: --reps must be at least 1\n";
    return std::nullopt;
  }
  return opts;
}

std::vector<const Scenario*> select_scenarios(const CliOptions& opts,
                                              bool& pattern_error) {
  pattern_error = false;
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  if (opts.filter.empty()) return registry.all();
  try {
    return registry.matching(opts.filter);
  } catch (const std::regex_error& e) {
    std::cerr << "eus_bench: bad --filter regex '" << opts.filter
              << "': " << e.what() << '\n';
    pattern_error = true;
    return {};
  }
}

void print_list(const std::vector<const Scenario*>& scenarios) {
  AsciiTable table({"scenario", "description"});
  for (const Scenario* s : scenarios) {
    table.add_row({s->name, s->description});
  }
  std::cout << table.render() << scenarios.size() << " scenario"
            << (scenarios.size() == 1 ? "" : "s") << '\n';
}

void print_compare_report(const CompareReport& report,
                          const Baselines& baselines,
                          const MachineInfo& machine) {
  if (!baselines.machine.empty() && baselines.machine != machine.host) {
    std::cout << "note: baselines recorded on '" << baselines.machine
              << "', this run is on '" << machine.host
              << "' — wall-clock bands may not transfer\n";
  }
  AsciiTable table(
      {"scenario", "metric", "baseline", "measured", "delta", "speedup",
       "band", "status"});
  for (const CompareEntry& e : report.entries) {
    const bool has_values = e.status == CompareStatus::kOk ||
                            e.status == CompareStatus::kImproved ||
                            e.status == CompareStatus::kRegression;
    // Every metric is higher-is-worse, so baseline/measured > 1 means this
    // run beat the recorded baseline by that factor.
    const bool has_ratio = has_values && e.measured > 0.0;
    table.add_row(
        {e.scenario, e.metric.empty() ? "-" : e.metric,
         has_values || e.status == CompareStatus::kMissingMetric
             ? format_double(e.baseline, 4)
             : "-",
         has_values ? format_double(e.measured, 4) : "-",
         has_values ? format_double(e.delta_pct, 1) + "%" : "-",
         has_ratio ? format_double(e.baseline / e.measured, 2) + "x" : "-",
         has_values || e.status == CompareStatus::kMissingMetric
             ? "±" + format_double(e.tolerance_pct, 0) + "%"
             : "-",
         to_string(e.status)});
  }
  std::cout << table.render();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const CliOptions& opts = *parsed;

  bool pattern_error = false;
  const std::vector<const Scenario*> scenarios =
      select_scenarios(opts, pattern_error);
  if (pattern_error) return kExitUsage;

  if (opts.list) {
    print_list(scenarios);
    return kExitOk;
  }
  if (scenarios.empty()) {
    std::cerr << "eus_bench: no scenario matches"
              << (opts.filter.empty() ? "" : " --filter '" + opts.filter + "'")
              << "\n";
    return kExitUsage;
  }

  BenchResults results;
  results.git_sha = discover_git_sha();
  results.machine = local_machine();
  results.config.scale = bench_scale();
  results.config.seed = bench_seed();
  results.config.threads = bench_threads();
  results.config.warmup = opts.warmup;
  results.config.repetitions = opts.repetitions;

  RunOptions run_options;
  run_options.warmup = opts.warmup;
  run_options.repetitions = opts.repetitions;
  run_options.quiet = !opts.verbose;

  bool scenario_failed = false;
  std::size_t index = 0;
  for (const Scenario* scenario : scenarios) {
    ++index;
    std::cout << "[" << index << "/" << scenarios.size() << "] "
              << scenario->name << " ..." << std::flush;
    if (opts.verbose) std::cout << '\n';
    ScenarioResult result = run_scenario(*scenario, run_options);
    if (result.exit_code != 0) {
      scenario_failed = true;
      std::cout << " FAILED (exit " << result.exit_code << ")\n";
    } else {
      const Aggregate wall = result.wall();
      std::cout << " median " << format_double(wall.median, 4) << " s (mad "
                << format_double(wall.mad, 4) << ", " << wall.count
                << " rep" << (wall.count == 1 ? "" : "s") << ", warmup "
                << opts.warmup << ")\n";
    }
    results.scenarios.push_back(std::move(result));
  }

  if (opts.out_path != "off" && opts.out_path != "none") {
    std::ofstream out(opts.out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "eus_bench: cannot write " << opts.out_path << '\n';
      return kExitUsage;
    }
    out << to_json(results) << '\n';
    std::cout << "results: " << opts.out_path << '\n';
  }

  int exit_code = scenario_failed ? kExitScenarioFailure : kExitOk;

  if (opts.update_baselines) {
    const std::string path =
        opts.compare_path.value_or("bench/baselines.json");
    Baselines existing;
    try {
      existing = baselines_from_json(parse_json_file(path));
    } catch (const std::exception&) {
      // First generation: start from an empty set.
    }
    const Baselines updated = update_baselines(existing, results);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "eus_bench: cannot write " << path << '\n';
      return kExitUsage;
    }
    out << to_json(updated) << '\n';
    std::cout << "baselines updated: " << path << " ("
              << updated.scenarios.size() << " scenarios)\n";
  } else if (opts.compare_path) {
    Baselines baselines;
    try {
      baselines = baselines_from_json(parse_json_file(*opts.compare_path));
    } catch (const std::exception& e) {
      std::cerr << "eus_bench: cannot load baselines: " << e.what() << '\n';
      return kExitUsage;
    }
    const CompareReport report =
        compare(results, baselines, opts.tolerance_pct);
    print_compare_report(report, baselines, results.machine);
    if (!report.ok()) {
      std::cout << report.failures()
                << " regression(s) beyond tolerance — failing (rerun with "
                   "--update-baselines after an intentional change)\n";
      if (exit_code == kExitOk) exit_code = kExitRegression;
    } else {
      std::cout << "baseline gate: ok\n";
    }
  }

  return exit_code;
}
