// eus_client — CLI client and load generator for eus_served.
//
//   eus_client --healthz
//   eus_client --mode heuristic:min-energy --scenario dataset1
//   eus_client --mode nsga2 --generations 64 --deadline-ms 200
//   eus_client --mode pareto-query --max-energy 1500
//   eus_client --mode nsga2 --repeat 8 --concurrency 4   # load generator
//   eus_client --mode nsga2 --tenant acme                # warm-start archive
//
// Delta requests (docs/tenant.md): mutate a tenant's previously optimized
// scenario and re-polish the archived front instead of restarting.
// Mutations apply in command-line order:
//
//   eus_client delta --tenant acme --scenario custom --tasks 60
//       --add-tasks 10 --drop-machine 3
//
// Live administration (the daemon's adminz plane, docs/runtime.md):
//
//   eus_client admin get-config
//   eus_client admin set-queue-depth 16
//   eus_client admin set-workers 4
//   eus_client admin set-cache-entries 128
//   eus_client admin catalog-reload --catalog scenarios.json
//   eus_client admin archive-stats
//   eus_client admin archive-flush [tenant]
//   eus_client admin archive-cap <tenant> <n>
//
// Exit codes (mirrors eus_bench's small-integer convention):
//   0  success
//   1  server-sent error response (4xx/5xx payload)
//   2  usage error
//   3  connect failure (daemon unreachable / connection lost)
//   4  deadline exceeded (partial front, code 206)

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "telemetry/json.hpp"
#include "util/env.hpp"
#include "util/json_value.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace eus;
using namespace eus::serve;

constexpr int kExitOk = 0;
constexpr int kExitServerError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConnectFailure = 3;
constexpr int kExitDeadlineExceeded = 4;

/// One delta mutation as given on the command line (order preserved).
struct CliMutation {
  std::string op;  ///< add-tasks | remove-tasks | set-window | drop-machine
  std::size_t count = 0;
  double window_s = 0.0;
  std::size_t machine = 0;
};

struct CliOptions {
  std::uint16_t port = serve_port();
  bool healthz = false;
  bool metricsz = false;
  bool admin = false;
  bool delta = false;                       ///< "delta" subcommand
  std::string admin_action;                 ///< adminz verb
  std::optional<std::size_t> admin_value;   ///< set-* / archive-cap operand
  std::string admin_name;                   ///< backend / tenant target
  std::optional<std::string> catalog_path;  ///< catalog-reload JSON file
  std::optional<std::string> fleet_path;    ///< fleet-reload JSON file
  std::string tenant;                       ///< warm-start archive key
  std::vector<CliMutation> mutations;       ///< delta mutations, CLI order
  std::optional<std::size_t> polish_generations;
  bool cold_fallback = true;  ///< --no-cold-fallback: archive miss = 404
  bool raw_json = false;
  std::string mode = "heuristic:min-energy";
  std::string id;
  std::string scenario = "dataset1";
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> tasks;
  std::optional<double> window_s;
  std::optional<std::size_t> population;
  std::optional<std::size_t> generations;
  std::optional<double> mutation;
  std::optional<std::string> seeds;  ///< comma-separated slugs or "all"
  double deadline_ms = 0.0;
  std::optional<double> max_energy;
  std::optional<double> min_utility;
  std::size_t repeat = 1;       ///< requests per connection
  std::size_t concurrency = 1;  ///< parallel connections
};

void print_usage(std::ostream& out) {
  out << "usage: eus_client [options]\n"
         "       eus_client delta --tenant <id> [mutations] [options]\n"
         "       eus_client admin <verb> [value] [options]\n"
         "\n"
         "delta requests (docs/tenant.md) mutate the --scenario base a\n"
         "tenant previously optimized and re-polish its archived front;\n"
         "mutations apply in command-line order:\n"
         "  --add-tasks <n>      grow a custom trace by n tasks\n"
         "  --remove-tasks <n>   shrink a custom trace by n tasks\n"
         "  --set-window <x>     retune a custom trace's window seconds\n"
         "  --drop-machine <n>   remove machine instance n from the system\n"
         "  --polish-generations <n>\n"
         "                       polish budget (default: generations/16)\n"
         "  --no-cold-fallback   answer 404 on an archive miss instead of\n"
         "                       running the mutated scenario cold\n"
         "\n"
         "admin verbs (live daemon reconfiguration, no restart):\n"
         "  get-config           effective configuration + phase snapshot\n"
         "  set-queue-depth <n>  live bounded-queue capacity\n"
         "  set-cache-entries <n> live front-cache capacity\n"
         "  set-workers <n>      live worker-pool resize\n"
         "  catalog-reload --catalog <file>\n"
         "                       atomically swap the scenario catalog; the\n"
         "                       file holds {\"scenarios\": [{\"name\", "
         "\"base\",\n"
         "                       \"seed\"?, \"tasks\"?, \"window_s\"?}, "
         "...]}\n"
         "  archive-stats        warm-start archive occupancy + hit rates\n"
         "  archive-flush [tenant]\n"
         "                       drop one tenant's archive (all when "
         "omitted)\n"
         "  archive-cap <tenant> <n>\n"
         "                       set a tenant's archived-scenario cap\n"
         "\n"
         "router-only admin verbs (eus_router fleets, docs/fleet.md):\n"
         "  enable-backend <name>   mark a backend routable again\n"
         "  disable-backend <name>  drain a backend out of the rotation\n"
         "  fleet-reload --fleet <file>\n"
         "                       atomically swap the fleet config; the file\n"
         "                       holds {\"backends\": [{\"name\", \"port\", "
         "...}]}\n"
         "\n"
         "options:\n"
         "  --port <n>           daemon port (default EUS_SERVE_PORT or "
         "7461)\n"
         "  --healthz            health snapshot request\n"
         "  --metricsz           metrics snapshot request\n"
         "  --mode <m>           heuristic:<name> | nsga2 | pareto-query\n"
         "                       (default heuristic:min-energy; names:\n"
         "                       min-energy, max-utility,\n"
         "                       max-utility-per-energy, min-min)\n"
         "  --id <s>             correlation id echoed by the server\n"
         "  --scenario <s>       dataset1|dataset2|dataset3|custom "
         "(default dataset1)\n"
         "  --seed <n>           scenario seed\n"
         "  --tenant <id>        warm-start archive key ([A-Za-z0-9._-]);\n"
         "                       allocate: archive + reuse converged "
         "fronts,\n"
         "                       delta: required\n"
         "  --tasks <n>          custom-scenario task count\n"
         "  --window <x>        custom-scenario window seconds\n"
         "  --population <n>     NSGA-II population (even, >= 2)\n"
         "  --generations <n>    NSGA-II generation budget\n"
         "  --mutation <x>       NSGA-II mutation probability\n"
         "  --seeds <list>       comma-separated seed heuristics, or 'all'\n"
         "  --deadline-ms <x>    per-request deadline; on expiry the server\n"
         "                       answers the best front so far (exit 4)\n"
         "  --max-energy <x>     pareto-query energy budget\n"
         "  --min-utility <x>    pareto-query utility floor\n"
         "  --repeat <n>         requests per connection (default 1)\n"
         "  --concurrency <n>    parallel connections (default 1)\n"
         "  --json               print raw response payload(s)\n"
         "  -h, --help           this text\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "eus_client: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  const auto parse_count = [](const char* text) -> std::optional<std::size_t> {
    char* end = nullptr;
    const long long n = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || n < 0) return std::nullopt;
    return static_cast<std::size_t>(n);
  };
  const auto parse_num = [](const char* text) -> std::optional<double> {
    char* end = nullptr;
    const double x = std::strtod(text, &end);
    if (end == text || *end != '\0') return std::nullopt;
    return x;
  };
  int start = 1;
  if (argc > 1 && std::string(argv[1]) == "delta") {
    opts.delta = true;
    start = 2;
  } else if (argc > 1 && std::string(argv[1]) == "admin") {
    opts.admin = true;
    if (argc < 3 || argv[2][0] == '-') {
      std::cerr << "eus_client: admin needs a verb (get-config|"
                   "set-queue-depth|set-cache-entries|set-workers|"
                   "catalog-reload|enable-backend|disable-backend|"
                   "fleet-reload|archive-stats|archive-flush|"
                   "archive-cap)\n";
      return std::nullopt;
    }
    opts.admin_action = argv[2];
    start = 3;
    if (argc > 3 && argv[3][0] != '-') {
      // The *-backend verbs and archive-flush take a name, archive-cap a
      // name followed by an integer, the set-* verbs an integer.
      if (opts.admin_action == "enable-backend" ||
          opts.admin_action == "disable-backend" ||
          opts.admin_action == "archive-flush") {
        opts.admin_name = argv[3];
        start = 4;
      } else if (opts.admin_action == "archive-cap") {
        opts.admin_name = argv[3];
        start = 4;
        if (argc > 4 && argv[4][0] != '-') {
          const std::optional<std::size_t> n = parse_count(argv[4]);
          if (!n) {
            std::cerr << "eus_client: archive-cap wants a non-negative "
                         "integer cap, got '"
                      << argv[4] << "'\n";
            return std::nullopt;
          }
          opts.admin_value = n;
          start = 5;
        }
      } else {
        const std::optional<std::size_t> n = parse_count(argv[3]);
        if (!n) {
          std::cerr << "eus_client: admin value wants a non-negative "
                       "integer, got '"
                    << argv[3] << "'\n";
          return std::nullopt;
        }
        opts.admin_value = n;
        start = 4;
      }
    }
  }
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto count_flag = [&](std::optional<std::size_t>& out) -> bool {
      const char* v = value_of(i, arg.c_str());
      if (v == nullptr) return false;
      const std::optional<std::size_t> n = parse_count(v);
      if (!n) {
        std::cerr << "eus_client: " << arg
                  << " wants a non-negative integer, got '" << v << "'\n";
        return false;
      }
      out = n;
      return true;
    };
    const auto num_flag = [&](std::optional<double>& out) -> bool {
      const char* v = value_of(i, arg.c_str());
      if (v == nullptr) return false;
      const std::optional<double> x = parse_num(v);
      if (!x) {
        std::cerr << "eus_client: " << arg << " wants a number, got '" << v
                  << "'\n";
        return false;
      }
      out = x;
      return true;
    };
    if (arg == "--healthz") {
      opts.healthz = true;
    } else if (arg == "--metricsz") {
      opts.metricsz = true;
    } else if (arg == "--json") {
      opts.raw_json = true;
    } else if (arg == "--port") {
      const char* v = value_of(i, "--port");
      if (v == nullptr) return std::nullopt;
      const std::optional<std::size_t> n = parse_count(v);
      if (!n || *n == 0 || *n > 65535) {
        std::cerr << "eus_client: --port wants 1..65535, got '" << v
                  << "'\n";
        return std::nullopt;
      }
      opts.port = static_cast<std::uint16_t>(*n);
    } else if (arg == "--mode") {
      const char* v = value_of(i, "--mode");
      if (v == nullptr) return std::nullopt;
      opts.mode = v;
    } else if (arg == "--id") {
      const char* v = value_of(i, "--id");
      if (v == nullptr) return std::nullopt;
      opts.id = v;
    } else if (arg == "--scenario") {
      const char* v = value_of(i, "--scenario");
      if (v == nullptr) return std::nullopt;
      opts.scenario = v;
    } else if (arg == "--tenant") {
      const char* v = value_of(i, "--tenant");
      if (v == nullptr) return std::nullopt;
      opts.tenant = v;
    } else if (arg == "--add-tasks" || arg == "--remove-tasks" ||
               arg == "--drop-machine") {
      std::optional<std::size_t> n;
      if (!count_flag(n)) return std::nullopt;
      CliMutation m;
      m.op = arg.substr(2);
      if (arg == "--drop-machine") {
        m.machine = *n;
      } else {
        m.count = *n;
      }
      opts.mutations.push_back(m);
    } else if (arg == "--set-window") {
      std::optional<double> x;
      if (!num_flag(x)) return std::nullopt;
      CliMutation m;
      m.op = "set-window";
      m.window_s = *x;
      opts.mutations.push_back(m);
    } else if (arg == "--polish-generations") {
      if (!count_flag(opts.polish_generations)) return std::nullopt;
    } else if (arg == "--no-cold-fallback") {
      opts.cold_fallback = false;
    } else if (arg == "--catalog") {
      const char* v = value_of(i, "--catalog");
      if (v == nullptr) return std::nullopt;
      opts.catalog_path = v;
    } else if (arg == "--fleet") {
      const char* v = value_of(i, "--fleet");
      if (v == nullptr) return std::nullopt;
      opts.fleet_path = v;
    } else if (arg == "--seeds") {
      const char* v = value_of(i, "--seeds");
      if (v == nullptr) return std::nullopt;
      opts.seeds = v;
    } else if (arg == "--seed") {
      std::optional<std::size_t> n;
      if (!count_flag(n)) return std::nullopt;
      opts.seed = static_cast<std::uint64_t>(*n);
    } else if (arg == "--tasks") {
      if (!count_flag(opts.tasks)) return std::nullopt;
    } else if (arg == "--population") {
      if (!count_flag(opts.population)) return std::nullopt;
    } else if (arg == "--generations") {
      if (!count_flag(opts.generations)) return std::nullopt;
    } else if (arg == "--window") {
      if (!num_flag(opts.window_s)) return std::nullopt;
    } else if (arg == "--mutation") {
      if (!num_flag(opts.mutation)) return std::nullopt;
    } else if (arg == "--deadline-ms") {
      std::optional<double> x;
      if (!num_flag(x)) return std::nullopt;
      opts.deadline_ms = *x;
    } else if (arg == "--max-energy") {
      if (!num_flag(opts.max_energy)) return std::nullopt;
    } else if (arg == "--min-utility") {
      if (!num_flag(opts.min_utility)) return std::nullopt;
    } else if (arg == "--repeat" || arg == "--concurrency") {
      std::optional<std::size_t> n;
      if (!count_flag(n)) return std::nullopt;
      if (*n == 0) {
        std::cerr << "eus_client: " << arg << " must be >= 1\n";
        return std::nullopt;
      }
      (arg == "--repeat" ? opts.repeat : opts.concurrency) = *n;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else {
      std::cerr << "eus_client: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.healthz && opts.metricsz) {
    std::cerr << "eus_client: pick one of --healthz / --metricsz\n";
    return std::nullopt;
  }
  if (opts.delta) {
    if (opts.tenant.empty()) {
      std::cerr << "eus_client: delta needs --tenant <id> (the archive "
                   "holding the base front)\n";
      return std::nullopt;
    }
    if (opts.mutations.empty()) {
      std::cerr << "eus_client: delta needs at least one mutation "
                   "(--add-tasks/--remove-tasks/--set-window/"
                   "--drop-machine); an unchanged scenario is an allocate "
                   "request\n";
      return std::nullopt;
    }
  } else if (!opts.mutations.empty() || opts.polish_generations ||
             !opts.cold_fallback) {
    std::cerr << "eus_client: mutation flags apply only to the delta "
                 "subcommand\n";
    return std::nullopt;
  }
  if (opts.admin) {
    const std::string& verb = opts.admin_action;
    const bool is_set = verb == "set-queue-depth" ||
                        verb == "set-cache-entries" || verb == "set-workers";
    const bool is_backend =
        verb == "enable-backend" || verb == "disable-backend";
    if (verb != "get-config" && verb != "catalog-reload" &&
        verb != "fleet-reload" && verb != "archive-stats" &&
        verb != "archive-flush" && verb != "archive-cap" && !is_set &&
        !is_backend) {
      std::cerr << "eus_client: unknown admin verb '" << verb << "'\n";
      return std::nullopt;
    }
    if (is_set && (!opts.admin_value || *opts.admin_value == 0)) {
      std::cerr << "eus_client: admin " << verb
                << " needs an integer value >= 1\n";
      return std::nullopt;
    }
    if (verb == "archive-cap" &&
        (opts.admin_name.empty() || !opts.admin_value ||
         *opts.admin_value == 0)) {
      std::cerr << "eus_client: admin archive-cap needs a tenant name and "
                   "an integer cap >= 1\n";
      return std::nullopt;
    }
    if (is_backend && opts.admin_name.empty()) {
      std::cerr << "eus_client: admin " << verb
                << " needs a backend name\n";
      return std::nullopt;
    }
    if (verb == "catalog-reload" && !opts.catalog_path) {
      std::cerr << "eus_client: admin catalog-reload needs --catalog "
                   "<file>\n";
      return std::nullopt;
    }
    if (verb == "fleet-reload" && !opts.fleet_path) {
      std::cerr << "eus_client: admin fleet-reload needs --fleet <file>\n";
      return std::nullopt;
    }
  }
  return opts;
}

/// Renders the adminz request; nullopt (after printing the reason) when
/// the catalog file cannot be read or is not JSON.
std::optional<std::string> build_admin_request(const CliOptions& opts) {
  JsonObject o;
  o.field("type", "adminz");
  if (!opts.id.empty()) o.field("id", opts.id);
  o.field("action", opts.admin_action);
  if (opts.admin_value) {
    o.field("value", static_cast<std::uint64_t>(*opts.admin_value));
  }
  if (!opts.admin_name.empty()) o.field("name", opts.admin_name);
  const auto splice_file = [&](const std::string& path, const char* key,
                               const char* what) -> bool {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "eus_client: cannot read " << what << " file '" << path
                << "'\n";
      return false;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    try {
      (void)util::parse_json(contents.str());
    } catch (const util::JsonParseError& e) {
      std::cerr << "eus_client: " << what
                << " file is not valid JSON: " << e.what() << '\n';
      return false;
    }
    o.raw(key, contents.str());
    return true;
  };
  if (opts.catalog_path &&
      !splice_file(*opts.catalog_path, "catalog", "catalog")) {
    return std::nullopt;
  }
  if (opts.fleet_path && !splice_file(*opts.fleet_path, "fleet", "fleet")) {
    return std::nullopt;
  }
  return o.str();
}

std::string build_request(const CliOptions& opts) {
  JsonObject o;
  if (opts.healthz || opts.metricsz) {
    o.field("type", opts.healthz ? "healthz" : "metricsz");
    if (!opts.id.empty()) o.field("id", opts.id);
    return o.str();
  }
  JsonObject scenario;
  scenario.field("name", opts.scenario);
  if (opts.seed) scenario.field("seed", *opts.seed);
  if (opts.tasks) {
    scenario.field("tasks", static_cast<std::uint64_t>(*opts.tasks));
  }
  if (opts.window_s) scenario.field("window_s", *opts.window_s);
  if (opts.delta) {
    o.field("type", "delta");
    if (!opts.id.empty()) o.field("id", opts.id);
    o.field("tenant", opts.tenant);
    o.raw("base", scenario.str());
    std::string mutations = "[";
    for (std::size_t i = 0; i < opts.mutations.size(); ++i) {
      const CliMutation& m = opts.mutations[i];
      if (i != 0) mutations += ',';
      JsonObject mut;
      mut.field("op", m.op);
      if (m.op == "add-tasks" || m.op == "remove-tasks") {
        mut.field("count", static_cast<std::uint64_t>(m.count));
      } else if (m.op == "set-window") {
        mut.field("window_s", m.window_s);
      } else {
        mut.field("machine", static_cast<std::uint64_t>(m.machine));
      }
      mutations += mut.str();
    }
    mutations += ']';
    o.raw("mutations", mutations);
    if (opts.polish_generations) {
      o.field("polish_generations",
              static_cast<std::uint64_t>(*opts.polish_generations));
    }
    if (!opts.cold_fallback) o.field("cold_fallback", false);
  } else {
    o.field("type", "allocate");
    if (!opts.id.empty()) o.field("id", opts.id);
    o.field("mode", opts.mode);
    if (!opts.tenant.empty()) o.field("tenant", opts.tenant);
    o.raw("scenario", scenario.str());
  }
  if (opts.population || opts.generations || opts.mutation || opts.seeds) {
    JsonObject nsga2;
    if (opts.population) {
      nsga2.field("population", static_cast<std::uint64_t>(*opts.population));
    }
    if (opts.generations) {
      nsga2.field("generations",
                  static_cast<std::uint64_t>(*opts.generations));
    }
    if (opts.mutation) nsga2.field("mutation_probability", *opts.mutation);
    if (opts.seeds) {
      std::string array = "[";
      if (*opts.seeds == "all") {
        bool first = true;
        for (const SeedHeuristic h : all_seed_heuristics()) {
          if (!first) array += ',';
          first = false;
          array += '"';
          array += heuristic_slug(h);
          array += '"';
        }
      } else {
        std::stringstream stream(*opts.seeds);
        std::string token;
        bool first = true;
        while (std::getline(stream, token, ',')) {
          if (token.empty()) continue;
          if (!first) array += ',';
          first = false;
          array += '"' + json_escape(token) + '"';
        }
      }
      array += ']';
      nsga2.raw("seeds", array);
    }
    o.raw("nsga2", nsga2.str());
  }
  if (opts.deadline_ms > 0.0) o.field("deadline_ms", opts.deadline_ms);
  if (opts.max_energy || opts.min_utility) {
    JsonObject query;
    if (opts.max_energy) query.field("max_energy", *opts.max_energy);
    if (opts.min_utility) query.field("min_utility", *opts.min_utility);
    o.raw("query", query.str());
  }
  return o.str();
}

/// Maps one response payload to the tool's exit code.
int response_exit_code(const util::JsonValue& doc) {
  const int code = static_cast<int>(doc.number_or("code", 500.0));
  if (code == kCodePartial) return kExitDeadlineExceeded;
  if (code >= 400) return kExitServerError;
  return kExitOk;
}

void print_response(const util::JsonValue& doc) {
  const int code = static_cast<int>(doc.number_or("code", 0.0));
  std::cout << "status: " << doc.string_or("status", "?") << " (code "
            << code << ")\n";
  const std::string error = doc.string_or("error", "");
  if (!error.empty()) {
    std::cout << "error: " << error << '\n';
    return;
  }
  if (const std::string action = doc.string_or("action", "");
      !action.empty()) {
    std::cout << "action: " << action << '\n';
    for (const char* key :
         {"phase", "queue_depth", "queue_size", "workers", "workers_active",
          "cache_entries", "cache_size", "eval_threads", "catalog_generation",
          "catalog_size", "service", "policy", "backend", "enabled",
          "tenants", "entries", "genomes", "flushed", "cap"}) {
      if (const util::JsonValue* v = doc.get(key); v != nullptr) {
        std::cout << key << ": ";
        if (v->is_string()) {
          std::cout << v->string;
        } else if (v->is_number()) {
          std::cout << v->number;
        } else if (v->kind == util::JsonValue::Kind::kBool) {
          std::cout << (v->boolean ? "true" : "false");
        }
        std::cout << '\n';
      }
    }
    if (const util::JsonValue* per_tenant = doc.get("per_tenant");
        per_tenant != nullptr && per_tenant->is_array()) {
      for (const util::JsonValue& t : per_tenant->array) {
        std::cout << "  " << t.string_or("tenant", "?") << ": entries "
                  << t.number_or("entries", 0.0) << "/"
                  << t.number_or("cap", 0.0) << ", genomes "
                  << t.number_or("genomes", 0.0) << ", warm hits "
                  << t.number_or("warm_hits", 0.0) << ", misses "
                  << t.number_or("misses", 0.0) << '\n';
      }
    }
    if (const util::JsonValue* backends = doc.get("backends");
        backends != nullptr) {
      if (backends->is_number()) {
        std::cout << "backends: " << backends->number << '\n';
      } else if (backends->is_array()) {
        std::cout << "backends: " << backends->array.size() << '\n';
        for (const util::JsonValue& b : backends->array) {
          std::cout << "  " << b.string_or("name", "?") << " port "
                    << b.number_or("port", 0.0)
                    << (b.get("enabled") != nullptr && b.get("enabled")->boolean
                            ? ""
                            : " [disabled]")
                    << (b.get("up") != nullptr && b.get("up")->boolean
                            ? " up"
                            : " DOWN")
                    << ", in-flight " << b.number_or("in_flight", 0.0) << "/"
                    << b.number_or("max_in_flight", 0.0) << ", served "
                    << b.number_or("requests", 0.0) << ", failures "
                    << b.number_or("failures", 0.0) << '\n';
        }
      }
    }
    return;
  }
  const std::string mode = doc.string_or("mode", "");
  if (!mode.empty()) {
    std::cout << "mode: " << mode << ", scenario: "
              << doc.string_or("scenario", "?");
    if (doc.get("cache") != nullptr) {
      std::cout << ", cache: " << doc.string_or("cache", "?");
    }
    if (const std::string tenant = doc.string_or("tenant", "");
        !tenant.empty()) {
      std::cout << ", tenant: " << tenant;
    }
    if (const util::JsonValue* warm = doc.get("warm");
        warm != nullptr && warm->kind == util::JsonValue::Kind::kBool) {
      std::cout << ", warm: " << (warm->boolean ? "yes" : "no");
    }
    std::cout << '\n';
  }
  if (const util::JsonValue* front = doc.get("front");
      front != nullptr && front->is_array()) {
    std::cout << "front: " << front->array.size() << " point"
              << (front->array.size() == 1 ? "" : "s") << '\n';
  }
  if (const util::JsonValue* point = doc.get("objectives");
      point != nullptr && point->is_object()) {
    std::cout << "objectives: energy " << point->number_or("energy", 0.0)
              << " J, utility " << point->number_or("utility", 0.0) << '\n';
  }
  if (const util::JsonValue* timing = doc.get("timing");
      timing != nullptr && timing->is_object()) {
    std::cout << "timing: queue " << timing->number_or("queue_ms", 0.0)
              << " ms, service " << timing->number_or("service_ms", 0.0)
              << " ms\n";
  }
  if (doc.get("uptime_s") != nullptr) {
    if (const std::string phase = doc.string_or("phase", "");
        !phase.empty()) {
      std::cout << "phase: " << phase << '\n';
    }
    std::cout << "uptime_s: " << doc.number_or("uptime_s", 0.0)
              << ", queue_depth: " << doc.number_or("queue_depth", 0.0)
              << "/" << doc.number_or("queue_capacity", 0.0)
              << ", in_flight: " << doc.number_or("in_flight", 0.0) << '\n';
  }
}

struct LoadStats {
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::size_t ok = 0;
  std::size_t partial = 0;
  std::size_t overloaded = 0;
  std::size_t errors = 0;
  std::atomic<bool> connect_failed{false};
};

void run_connection(const CliOptions& opts, const std::string& request,
                    LoadStats& stats) {
  ClientConnection connection;
  try {
    connection.connect(opts.port);
  } catch (const ConnectError& e) {
    stats.connect_failed = true;
    const std::lock_guard lock(stats.mutex);
    std::cerr << "eus_client: " << e.what() << '\n';
    return;
  }
  for (std::size_t r = 0; r < opts.repeat; ++r) {
    const Stopwatch clock;
    std::string payload;
    try {
      payload = connection.call(request);
    } catch (const std::exception& e) {
      stats.connect_failed = true;
      const std::lock_guard lock(stats.mutex);
      std::cerr << "eus_client: " << e.what() << '\n';
      return;
    }
    const double ms = clock.milliseconds();
    int code = 500;
    try {
      code = static_cast<int>(
          util::parse_json(payload).number_or("code", 500.0));
    } catch (const util::JsonParseError&) {
    }
    const std::lock_guard lock(stats.mutex);
    stats.latencies_ms.push_back(ms);
    if (code == kCodeOk) {
      ++stats.ok;
    } else if (code == kCodePartial) {
      ++stats.partial;
    } else if (code == kCodeOverloaded) {
      ++stats.overloaded;
    } else {
      ++stats.errors;
    }
  }
}

double quantile_ms(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int run_load(const CliOptions& opts, const std::string& request) {
  LoadStats stats;
  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(opts.concurrency);
  for (std::size_t c = 0; c < opts.concurrency; ++c) {
    threads.emplace_back(
        [&opts, &request, &stats] { run_connection(opts, request, stats); });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.seconds();

  std::vector<double> sorted = stats.latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t total = sorted.size();
  std::cout << "requests: " << total << " (" << stats.ok << " ok, "
            << stats.partial << " partial, " << stats.overloaded
            << " overloaded, " << stats.errors << " error)\n"
            << "wall: " << wall_s << " s, throughput: "
            << (wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0)
            << " req/s\n"
            << "latency ms: p50 " << quantile_ms(sorted, 0.50) << ", p95 "
            << quantile_ms(sorted, 0.95) << ", max "
            << (sorted.empty() ? 0.0 : sorted.back()) << '\n';

  if (stats.connect_failed) return kExitConnectFailure;
  if (stats.errors > 0 || stats.overloaded > 0) return kExitServerError;
  if (stats.partial > 0) return kExitDeadlineExceeded;
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const CliOptions& opts = *parsed;
  std::string request;
  if (opts.admin) {
    const std::optional<std::string> admin_request =
        build_admin_request(opts);
    if (!admin_request) return kExitUsage;
    request = *admin_request;
  } else {
    request = build_request(opts);
  }

  if (opts.repeat > 1 || opts.concurrency > 1) {
    return run_load(opts, request);
  }

  std::string payload;
  try {
    ClientConnection connection;
    connection.connect(opts.port);
    payload = connection.call(request);
  } catch (const ConnectError& e) {
    std::cerr << "eus_client: " << e.what() << '\n';
    return kExitConnectFailure;
  } catch (const std::exception& e) {
    std::cerr << "eus_client: " << e.what() << '\n';
    return kExitConnectFailure;
  }

  if (opts.raw_json) {
    std::cout << payload << '\n';
  }
  util::JsonValue doc;
  try {
    doc = util::parse_json(payload);
  } catch (const util::JsonParseError& e) {
    std::cerr << "eus_client: unparseable response: " << e.what() << '\n';
    return kExitServerError;
  }
  if (!opts.raw_json) print_response(doc);
  return response_exit_code(doc);
}
