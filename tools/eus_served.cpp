// eus_served — the allocation-as-a-service daemon.  Listens on loopback,
// speaks length-prefixed JSON frames (docs/serving.md), executes heuristic
// / NSGA-II / pareto-query allocate requests on a bounded worker queue
// with explicit backpressure, and serves a live admin plane (adminz:
// queue depth, cache entries, worker count, catalog hot-reload).
//
// The process lifecycle lives in ServeRuntime (docs/runtime.md): a phased
// state machine (booting → running → draining → halting → halted) with a
// dedicated signal thread consuming SIGINT/SIGTERM via sigtimedwait and an
// ordered teardown that answers every accepted request before exit.
//
//   eus_served                         # EUS_SERVE_PORT (default 7461)
//   eus_served --port 0               # ephemeral port, printed on stdout
//   EUS_RUNLOG=serve.jsonl eus_served # JSONL request log
//
// Exit codes: 0 clean shutdown, 1 startup failure, 2 usage error.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "serve/runtime.hpp"
#include "util/env.hpp"

#ifndef EUS_VERSION
#define EUS_VERSION "0.0.0"
#endif

namespace {

using namespace eus;
using namespace eus::serve;

constexpr int kExitOk = 0;
constexpr int kExitStartupFailure = 1;
constexpr int kExitUsage = 2;

struct CliOptions {
  std::uint16_t port = serve_port();
  std::size_t queue_depth = serve_queue_depth();
  std::size_t workers = 2;
  std::size_t eval_threads = bench_threads();  // 0 = hardware concurrency
  std::size_t cache_entries = 64;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  double diagnostics_period_s = 10.0;  // 0 disables the diagnostics thread
  std::optional<std::string> runlog = env_string("EUS_RUNLOG");
  // Warm-start archive (docs/tenant.md).
  std::optional<std::string> archive = env_string("EUS_ARCHIVE");
  std::size_t archive_tenants = 64;   // 0 disables the archive
  std::size_t archive_entries = 8;    // scenarios kept per tenant
  std::size_t archive_genomes = 32;   // genomes kept per scenario
};

void print_usage(std::ostream& out) {
  out << "usage: eus_served [options]\n"
         "  --port <n>           listen port on 127.0.0.1 (0 = ephemeral;\n"
         "                       default EUS_SERVE_PORT or 7461)\n"
         "  --queue-depth <n>    bounded request queue; overflow is\n"
         "                       answered with a 503 error (default\n"
         "                       EUS_SERVE_QUEUE_DEPTH or 64)\n"
         "  --workers <n>        request-executing worker threads (default "
         "2)\n"
         "  --threads <n>        shared NSGA-II evaluation pool: 0 =\n"
         "                       hardware concurrency, 1 = inline (default\n"
         "                       EUS_THREADS)\n"
         "  --cache-entries <n>  LRU front-cache entries; 0 disables\n"
         "                       (default 64; --cache is a synonym)\n"
         "  --max-frame <n>      per-frame payload byte cap (default 4 "
         "MiB)\n"
         "  --diagnostics <s>    seconds between diagnostics snapshots in\n"
         "                       the run log; 0 disables (default 10)\n"
         "  --runlog <path>      JSONL request log (default EUS_RUNLOG)\n"
         "  --archive <path>     warm-start archive checkpoint file: loaded\n"
         "                       on boot (a corrupt file cold-starts),\n"
         "                       written on drain (default EUS_ARCHIVE;\n"
         "                       unset = in-memory archive only)\n"
         "  --archive-tenants <n> max tenants in the warm-start archive;\n"
         "                       0 disables warm starts and the archive-*\n"
         "                       admin verbs (default 64)\n"
         "  --archive-entries <n> scenarios kept per tenant (default 8;\n"
         "                       per-tenant override: archive-cap verb)\n"
         "  --archive-genomes <n> genomes kept per scenario (default 32)\n"
         "  --version            print the version and exit\n"
         "  -h, --help           this text\n"
         "\n"
         "All of queue depth, cache entries, worker count, the scenario\n"
         "catalog and the per-tenant archive caps are also live-tunable\n"
         "without a restart: see `eus_client admin --help`, docs/runtime.md\n"
         "and docs/tenant.md.\n";
}

std::optional<std::size_t> parse_size(const char* text) {
  char* end = nullptr;
  const long long n = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || n < 0) return std::nullopt;
  return static_cast<std::size_t>(n);
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "eus_served: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  const auto size_flag = [&](int& i, const char* flag,
                             std::size_t& out) -> bool {
    const char* v = value_of(i, flag);
    if (v == nullptr) return false;
    const std::optional<std::size_t> n = parse_size(v);
    if (!n) {
      std::cerr << "eus_served: " << flag
                << " wants a non-negative integer, got '" << v << "'\n";
      return false;
    }
    out = *n;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      const char* v = value_of(i, "--port");
      if (v == nullptr) return std::nullopt;
      const std::optional<std::size_t> n = parse_size(v);
      if (!n || *n > 65535) {
        std::cerr << "eus_served: --port wants 0..65535, got '" << v
                  << "'\n";
        return std::nullopt;
      }
      opts.port = static_cast<std::uint16_t>(*n);
    } else if (arg == "--queue-depth") {
      if (!size_flag(i, "--queue-depth", opts.queue_depth)) {
        return std::nullopt;
      }
    } else if (arg == "--workers") {
      if (!size_flag(i, "--workers", opts.workers)) return std::nullopt;
    } else if (arg == "--threads") {
      if (!size_flag(i, "--threads", opts.eval_threads)) {
        return std::nullopt;
      }
    } else if (arg == "--cache" || arg == "--cache-entries") {
      if (!size_flag(i, arg.c_str(), opts.cache_entries)) {
        return std::nullopt;
      }
    } else if (arg == "--max-frame") {
      if (!size_flag(i, "--max-frame", opts.max_frame_bytes)) {
        return std::nullopt;
      }
    } else if (arg == "--diagnostics") {
      const char* v = value_of(i, "--diagnostics");
      if (v == nullptr) return std::nullopt;
      char* end = nullptr;
      const double s = std::strtod(v, &end);
      if (end == v || *end != '\0' || s < 0.0) {
        std::cerr << "eus_served: --diagnostics wants a non-negative "
                     "number of seconds, got '"
                  << v << "'\n";
        return std::nullopt;
      }
      opts.diagnostics_period_s = s;
    } else if (arg == "--runlog") {
      const char* v = value_of(i, "--runlog");
      if (v == nullptr) return std::nullopt;
      opts.runlog = v;
    } else if (arg == "--archive") {
      const char* v = value_of(i, "--archive");
      if (v == nullptr) return std::nullopt;
      opts.archive = v;
    } else if (arg == "--archive-tenants") {
      if (!size_flag(i, "--archive-tenants", opts.archive_tenants)) {
        return std::nullopt;
      }
    } else if (arg == "--archive-entries") {
      if (!size_flag(i, "--archive-entries", opts.archive_entries)) {
        return std::nullopt;
      }
    } else if (arg == "--archive-genomes") {
      if (!size_flag(i, "--archive-genomes", opts.archive_genomes)) {
        return std::nullopt;
      }
    } else if (arg == "--version") {
      std::cout << "eus_served " << EUS_VERSION << '\n';
      std::exit(kExitOk);
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else {
      std::cerr << "eus_served: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.queue_depth == 0 || opts.workers == 0) {
    std::cerr << "eus_served: --queue-depth and --workers must be >= 1\n";
    return std::nullopt;
  }
  if (opts.archive_tenants > 0 &&
      (opts.archive_entries == 0 || opts.archive_genomes == 0)) {
    std::cerr << "eus_served: --archive-entries and --archive-genomes must "
                 "be >= 1 (use --archive-tenants 0 to disable the "
                 "archive)\n";
    return std::nullopt;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const CliOptions& opts = *parsed;

  ::signal(SIGPIPE, SIG_IGN);

  RuntimeConfig config;
  config.server.port = opts.port;
  config.server.queue_depth = opts.queue_depth;
  config.server.workers = opts.workers;
  config.server.eval_threads = opts.eval_threads;
  config.server.cache_entries = opts.cache_entries;
  config.server.max_frame_bytes = opts.max_frame_bytes;
  config.runlog_path = opts.runlog.value_or("");
  config.archive.max_tenants = opts.archive_tenants;
  config.archive.entries_per_tenant = opts.archive_entries;
  config.archive.genomes_per_entry = opts.archive_genomes;
  config.archive_path = opts.archive.value_or("");
  config.diagnostics_period_s = opts.diagnostics_period_s;
  config.signal_thread = true;

  try {
    ServeRuntime runtime(config);
    runtime.boot();
    std::cout << "eus_served " << EUS_VERSION << " listening on 127.0.0.1:"
              << runtime.server().port() << " (queue " << opts.queue_depth
              << ", workers " << opts.workers << ", cache "
              << opts.cache_entries << ", eval-threads "
              << runtime.server().eval_threads()
              << ", phase " << to_string(runtime.phase()) << ")"
              << std::endl;
    runtime.run();
    std::cout << "eus_served: drained, bye (phase "
              << to_string(runtime.phase()) << ")" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "eus_served: " << e.what() << '\n';
    return kExitStartupFailure;
  }
  return kExitOk;
}
