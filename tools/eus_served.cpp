// eus_served — the allocation-as-a-service daemon.  Listens on loopback,
// speaks length-prefixed JSON frames (docs/serving.md), executes heuristic
// / NSGA-II / pareto-query allocate requests on a bounded worker queue
// with explicit backpressure, and drains gracefully on SIGINT/SIGTERM:
// every request already accepted into the queue is answered before exit.
//
//   eus_served                         # EUS_SERVE_PORT (default 7461)
//   eus_served --port 0               # ephemeral port, printed on stdout
//   EUS_RUNLOG=serve.jsonl eus_served # JSONL request log
//
// Exit codes: 0 clean shutdown, 1 startup failure, 2 usage error.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "serve/server.hpp"
#include "util/env.hpp"

namespace {

using namespace eus;
using namespace eus::serve;

constexpr int kExitOk = 0;
constexpr int kExitStartupFailure = 1;
constexpr int kExitUsage = 2;

// Self-pipe: the signal handler writes one byte, the main thread blocks on
// the read end and runs the (non-async-signal-safe) graceful drain.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_stop_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

struct CliOptions {
  std::uint16_t port = serve_port();
  std::size_t queue_depth = serve_queue_depth();
  std::size_t workers = 2;
  std::size_t eval_threads = bench_threads();  // 0 = hardware concurrency
  std::size_t cache_entries = 64;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  std::optional<std::string> runlog = env_string("EUS_RUNLOG");
};

void print_usage(std::ostream& out) {
  out << "usage: eus_served [options]\n"
         "  --port <n>         listen port on 127.0.0.1 (0 = ephemeral;\n"
         "                     default EUS_SERVE_PORT or 7461)\n"
         "  --queue-depth <n>  bounded request queue; overflow is answered\n"
         "                     with a 503 error (default\n"
         "                     EUS_SERVE_QUEUE_DEPTH or 64)\n"
         "  --workers <n>      request-executing worker threads (default 2)\n"
         "  --threads <n>      shared NSGA-II evaluation pool: 0 = hardware\n"
         "                     concurrency, 1 = inline (default EUS_THREADS"
         ")\n"
         "  --cache <n>        LRU front-cache entries; 0 disables (default "
         "64)\n"
         "  --max-frame <n>    per-frame payload byte cap (default 4 MiB)\n"
         "  --runlog <path>    JSONL request log (default EUS_RUNLOG)\n"
         "  -h, --help         this text\n";
}

std::optional<std::size_t> parse_size(const char* text) {
  char* end = nullptr;
  const long long n = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || n < 0) return std::nullopt;
  return static_cast<std::size_t>(n);
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "eus_served: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  const auto size_flag = [&](int& i, const char* flag,
                             std::size_t& out) -> bool {
    const char* v = value_of(i, flag);
    if (v == nullptr) return false;
    const std::optional<std::size_t> n = parse_size(v);
    if (!n) {
      std::cerr << "eus_served: " << flag
                << " wants a non-negative integer, got '" << v << "'\n";
      return false;
    }
    out = *n;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      const char* v = value_of(i, "--port");
      if (v == nullptr) return std::nullopt;
      const std::optional<std::size_t> n = parse_size(v);
      if (!n || *n > 65535) {
        std::cerr << "eus_served: --port wants 0..65535, got '" << v
                  << "'\n";
        return std::nullopt;
      }
      opts.port = static_cast<std::uint16_t>(*n);
    } else if (arg == "--queue-depth") {
      if (!size_flag(i, "--queue-depth", opts.queue_depth)) {
        return std::nullopt;
      }
    } else if (arg == "--workers") {
      if (!size_flag(i, "--workers", opts.workers)) return std::nullopt;
    } else if (arg == "--threads") {
      if (!size_flag(i, "--threads", opts.eval_threads)) {
        return std::nullopt;
      }
    } else if (arg == "--cache") {
      if (!size_flag(i, "--cache", opts.cache_entries)) return std::nullopt;
    } else if (arg == "--max-frame") {
      if (!size_flag(i, "--max-frame", opts.max_frame_bytes)) {
        return std::nullopt;
      }
    } else if (arg == "--runlog") {
      const char* v = value_of(i, "--runlog");
      if (v == nullptr) return std::nullopt;
      opts.runlog = v;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else {
      std::cerr << "eus_served: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.queue_depth == 0 || opts.workers == 0) {
    std::cerr << "eus_served: --queue-depth and --workers must be >= 1\n";
    return std::nullopt;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const CliOptions& opts = *parsed;

  std::unique_ptr<RequestLog> log;
  if (opts.runlog && !opts.runlog->empty()) {
    try {
      log = std::make_unique<RequestLog>(*opts.runlog);
    } catch (const std::exception& e) {
      std::cerr << "eus_served: " << e.what() << '\n';
      return kExitStartupFailure;
    }
  }

  ServerConfig config;
  config.port = opts.port;
  config.queue_depth = opts.queue_depth;
  config.workers = opts.workers;
  config.eval_threads = opts.eval_threads;
  config.cache_entries = opts.cache_entries;
  config.max_frame_bytes = opts.max_frame_bytes;
  config.log = log.get();

  Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "eus_served: " << e.what() << '\n';
    return kExitStartupFailure;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "eus_served: pipe() failed\n";
    return kExitStartupFailure;
  }
  struct sigaction action {};
  action.sa_handler = on_stop_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::cout << "eus_served listening on 127.0.0.1:" << server.port()
            << " (queue " << opts.queue_depth << ", workers " << opts.workers
            << ")" << std::endl;

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::cout << "eus_served: draining..." << std::endl;
  server.request_stop();
  server.stop();
  std::cout << "eus_served: drained, bye" << std::endl;
  return kExitOk;
}
